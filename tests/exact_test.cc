#include "opt/exact.h"

#include <cmath>

#include <gtest/gtest.h>

#include "opt/dp.h"
#include "opt_test_util.h"

namespace opthash::opt {
namespace {

TEST(ExactTest, MatchesBruteForceLambdaOne) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(8, 3, 1.0, 0, seed, 40.0);
    const double brute = testutil::BruteForceOptimum(problem);
    ExactSolver solver;
    const SolveResult result = solver.Solve(problem);
    EXPECT_TRUE(result.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(result.objective.overall, brute, 1e-7) << "seed " << seed;
  }
}

TEST(ExactTest, MatchesBruteForceMixedLambda) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(7, 3, 0.5, 2, seed, 30.0);
    const double brute = testutil::BruteForceOptimum(problem);
    const SolveResult result = ExactSolver().Solve(problem);
    EXPECT_TRUE(result.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(result.objective.overall, brute, 1e-7) << "seed " << seed;
  }
}

TEST(ExactTest, MatchesBruteForceLambdaZero) {
  for (uint64_t seed = 20; seed <= 24; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(7, 2, 0.0, 2, seed, 30.0);
    const double brute = testutil::BruteForceOptimum(problem);
    const SolveResult result = ExactSolver().Solve(problem);
    EXPECT_TRUE(result.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(result.objective.overall, brute, 1e-7) << "seed " << seed;
  }
}

TEST(ExactTest, AgreesWithDpOnLargerLambdaOneInstances) {
  // DP certifies optimality for lambda = 1; branch-and-bound must match it.
  for (uint64_t seed = 30; seed <= 33; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(16, 3, 1.0, 0, seed, 60.0);
    const double dp_cost = DpSolver().Solve(problem).objective.overall;
    ExactConfig config;
    config.time_limit_seconds = 20.0;
    const SolveResult result = ExactSolver(config).Solve(problem);
    EXPECT_NEAR(result.objective.overall, dp_cost, 1e-7) << "seed " << seed;
  }
}

TEST(ExactTest, NeverWorseThanBcdIncumbent) {
  const HashingProblem problem = testutil::RandomProblem(14, 3, 0.7, 2, 40);
  BcdConfig bcd_config;
  bcd_config.num_restarts = 3;
  const double bcd_cost =
      BcdSolver(bcd_config).Solve(problem).objective.overall;
  ExactConfig config;
  config.bcd = bcd_config;
  config.time_limit_seconds = 10.0;
  const SolveResult result = ExactSolver(config).Solve(problem);
  EXPECT_LE(result.objective.overall, bcd_cost + 1e-9);
}

TEST(ExactTest, TimeLimitReturnsIncumbentUncertified) {
  // A large instance with an absurdly small budget: must return the BCD
  // incumbent and admit non-optimality.
  const HashingProblem problem = testutil::RandomProblem(60, 6, 0.5, 2, 41);
  ExactConfig config;
  config.time_limit_seconds = 0.05;
  config.node_limit = 10000;
  const SolveResult result = ExactSolver(config).Solve(problem);
  EXPECT_FALSE(result.proven_optimal);
  EXPECT_TRUE(IsValidAssignment(problem, result.assignment));
  // Still a sensible solution (BCD incumbent), not garbage.
  const double sane_reference =
      BcdSolver().Solve(problem).objective.overall * 3.0 + 1.0;
  EXPECT_LT(result.objective.overall, sane_reference);
}

TEST(ExactTest, SingleBucketInstantlyOptimal) {
  const HashingProblem problem = testutil::RandomProblem(10, 1, 1.0, 0, 42);
  const SolveResult result = ExactSolver().Solve(problem);
  EXPECT_TRUE(result.proven_optimal);
  for (int32_t bucket : result.assignment) EXPECT_EQ(bucket, 0);
}

TEST(ExactTest, WithoutBcdIncumbentStillOptimal) {
  const HashingProblem problem = testutil::RandomProblem(8, 2, 1.0, 0, 43);
  const double brute = testutil::BruteForceOptimum(problem);
  ExactConfig config;
  config.use_bcd_incumbent = false;
  const SolveResult result = ExactSolver(config).Solve(problem);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.objective.overall, brute, 1e-7);
}

TEST(ExactTest, LowerBoundMatchesObjectiveWhenOptimal) {
  const HashingProblem problem = testutil::RandomProblem(8, 3, 1.0, 0, 44);
  const SolveResult result = ExactSolver().Solve(problem);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_DOUBLE_EQ(result.lower_bound, result.objective.overall);
}

TEST(ExactTest, ExploresFewerNodesThanBruteForceWouldNeed) {
  // Symmetry breaking + bounds must beat b^n enumeration by a wide margin.
  const HashingProblem problem =
      testutil::RandomProblem(12, 3, 1.0, 0, 45, 50.0);
  const SolveResult result = ExactSolver().Solve(problem);
  ASSERT_TRUE(result.proven_optimal);
  const double brute_nodes = std::pow(3.0, 12.0);
  EXPECT_LT(static_cast<double>(result.iterations), brute_nodes / 4.0);
}

class ExactLambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExactLambdaSweep, OptimalAcrossLambdas) {
  const double lambda = GetParam();
  const HashingProblem problem =
      testutil::RandomProblem(7, 2, lambda, 2, 99, 25.0);
  const double brute = testutil::BruteForceOptimum(problem);
  const SolveResult result = ExactSolver().Solve(problem);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.objective.overall, brute, 1e-7) << "lambda " << lambda;
}

INSTANTIATE_TEST_SUITE_P(Lambdas, ExactLambdaSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace opthash::opt

#include "sketch/ams_sketch.h"

#include <cmath>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::sketch {
namespace {

double TrueF2(const std::unordered_map<uint64_t, int64_t>& freqs) {
  double f2 = 0.0;
  for (const auto& [key, f] : freqs) {
    f2 += static_cast<double>(f) * static_cast<double>(f);
  }
  return f2;
}

TEST(AmsSketchTest, SingleKeyExact) {
  AmsSketch sketch(5, 8, 1);
  for (int rep = 0; rep < 10; ++rep) sketch.Update(42);
  // Only one key: every atom holds ±10, so Z² = 100 exactly.
  EXPECT_DOUBLE_EQ(sketch.EstimateF2(), 100.0);
}

TEST(AmsSketchTest, EstimatesF2WithinTolerance) {
  Rng rng(2);
  ZipfSampler zipf(1000, 1.0);
  std::unordered_map<uint64_t, int64_t> truth;
  AmsSketch sketch(9, 32, 3);
  for (int t = 0; t < 50000; ++t) {
    const uint64_t key = zipf.Sample(rng);
    sketch.Update(key);
    ++truth[key];
  }
  const double f2 = TrueF2(truth);
  EXPECT_NEAR(sketch.EstimateF2(), f2, 0.35 * f2);
}

TEST(AmsSketchTest, MedianOfMeansTightensWithMoreEstimators) {
  // Average relative error over several streams must shrink as the
  // per-group estimator count grows.
  auto mean_relative_error = [](size_t per_group) {
    double total = 0.0;
    for (uint64_t seed = 0; seed < 8; ++seed) {
      Rng rng(100 + seed);
      std::unordered_map<uint64_t, int64_t> truth;
      AmsSketch sketch(5, per_group, 200 + seed);
      for (int t = 0; t < 20000; ++t) {
        const uint64_t key = rng.NextBounded(500);
        sketch.Update(key);
        ++truth[key];
      }
      const double f2 = TrueF2(truth);
      total += std::abs(sketch.EstimateF2() - f2) / f2;
    }
    return total / 8.0;
  };
  EXPECT_LT(mean_relative_error(64), mean_relative_error(2) + 0.02);
}

TEST(AmsSketchTest, SupportsDeletions) {
  // The tug-of-war sketch is a linear sketch: deletions (negative counts)
  // cancel exactly.
  AmsSketch sketch(5, 8, 4);
  for (uint64_t key = 0; key < 50; ++key) sketch.Update(key, 3);
  for (uint64_t key = 0; key < 50; ++key) sketch.Update(key, -3);
  EXPECT_DOUBLE_EQ(sketch.EstimateF2(), 0.0);
}

TEST(AmsSketchTest, GeometryAccessors) {
  AmsSketch sketch(7, 16, 5);
  EXPECT_EQ(sketch.groups(), 7u);
  EXPECT_EQ(sketch.estimators_per_group(), 16u);
  EXPECT_EQ(sketch.TotalCounters(), 112u);
  EXPECT_EQ(sketch.MemoryBuckets(), 224u);
}

TEST(AmsSketchTest, UnbiasedOverSketchRandomness) {
  // Mean estimate over many independent sketches approaches the true F2.
  Rng rng(6);
  std::unordered_map<uint64_t, int64_t> truth;
  std::vector<uint64_t> stream(5000);
  for (auto& key : stream) {
    key = rng.NextBounded(100);
    ++truth[key];
  }
  const double f2 = TrueF2(truth);
  double total = 0.0;
  constexpr int kSketches = 60;
  for (int s = 0; s < kSketches; ++s) {
    AmsSketch sketch(1, 4, 1000 + static_cast<uint64_t>(s));
    for (uint64_t key : stream) sketch.Update(key);
    total += sketch.EstimateF2();
  }
  EXPECT_NEAR(total / kSketches, f2, 0.25 * f2);
}

}  // namespace
}  // namespace opthash::sketch

#include "opt/smawk.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::opt {
namespace {

// Brute-force leftmost row minima.
std::vector<size_t> NaiveRowMinima(
    size_t rows, size_t cols,
    const std::function<double(size_t, size_t)>& value) {
  std::vector<size_t> out(rows, 0);
  for (size_t r = 0; r < rows; ++r) {
    double best = value(r, 0);
    for (size_t c = 1; c < cols; ++c) {
      const double v = value(r, c);
      if (v < best) {
        best = v;
        out[r] = c;
      }
    }
  }
  return out;
}

TEST(SmawkTest, SingleRowSingleColumn) {
  auto value = [](size_t, size_t) { return 1.0; };
  EXPECT_EQ(SmawkRowMinima(1, 1, value), std::vector<size_t>({0}));
}

TEST(SmawkTest, SingleRowManyColumns) {
  auto value = [](size_t, size_t c) {
    return std::abs(static_cast<double>(c) - 3.0);
  };
  EXPECT_EQ(SmawkRowMinima(1, 8, value), std::vector<size_t>({3}));
}

TEST(SmawkTest, DistanceMatrix) {
  // value(r, c) = (c - r)^2 is totally monotone; argmin of row r is c = r.
  auto value = [](size_t r, size_t c) {
    const double d = static_cast<double>(c) - static_cast<double>(r);
    return d * d;
  };
  const std::vector<size_t> argmins = SmawkRowMinima(10, 10, value);
  for (size_t r = 0; r < 10; ++r) EXPECT_EQ(argmins[r], r);
}

TEST(SmawkTest, MatchesNaiveOnRandomMongeMatrices) {
  // Build random Monge matrices: M[r][c] = f(r) + g(c) + k * (R - r) * c with
  // k <= 0 gives the (inverse) Monge condition ensuring total monotonicity
  // of row minima moving right as r grows.
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t rows = 1 + rng.NextBounded(30);
    const size_t cols = 1 + rng.NextBounded(30);
    std::vector<double> f(rows);
    std::vector<double> g(cols);
    for (double& v : f) v = rng.NextDouble(0.0, 10.0);
    for (double& v : g) v = rng.NextDouble(0.0, 10.0);
    const double k = rng.NextDouble(0.1, 2.0);
    std::vector<std::vector<double>> matrix(rows, std::vector<double>(cols));
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        // Additively Monge: M[r][c] = f(r) + g(c) - k*r*c satisfies
        // M[r][c] + M[r'][c'] <= M[r][c'] + M[r'][c] for r<r', c<c'.
        matrix[r][c] = f[r] + g[c] -
                       k * static_cast<double>(r) * static_cast<double>(c);
      }
    }
    auto value = [&](size_t r, size_t c) { return matrix[r][c]; };
    EXPECT_EQ(SmawkRowMinima(rows, cols, value),
              NaiveRowMinima(rows, cols, value))
        << "trial " << trial << " rows " << rows << " cols " << cols;
  }
}

TEST(SmawkTest, ArgminsAreMonotoneForMongeInput) {
  Rng rng(2);
  const size_t rows = 40;
  const size_t cols = 40;
  std::vector<std::vector<double>> matrix(rows, std::vector<double>(cols));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const double diag = static_cast<double>(c) - 0.8 * static_cast<double>(r);
      matrix[r][c] = rng.NextDouble(0.0, 1.0) * 0.0 +  // Deterministic base:
                     diag * diag;
    }
  }
  auto value = [&](size_t r, size_t c) { return matrix[r][c]; };
  const std::vector<size_t> argmins = SmawkRowMinima(rows, cols, value);
  for (size_t r = 1; r < rows; ++r) {
    EXPECT_GE(argmins[r], argmins[r - 1]);
  }
}

TEST(SmawkTest, WideMatrix) {
  auto value = [](size_t r, size_t c) {
    const double d = static_cast<double>(c) - 10.0 * static_cast<double>(r);
    return d * d;
  };
  const std::vector<size_t> argmins = SmawkRowMinima(5, 200, value);
  for (size_t r = 0; r < 5; ++r) EXPECT_EQ(argmins[r], 10 * r);
}

TEST(SmawkTest, TallMatrix) {
  auto value = [](size_t r, size_t c) {
    const double d = static_cast<double>(c) - static_cast<double>(r) / 50.0;
    return d * d;
  };
  const std::vector<size_t> argmins = SmawkRowMinima(200, 4, value);
  for (size_t r = 0; r < 200; ++r) {
    EXPECT_EQ(argmins[r], NaiveRowMinima(200, 4, value)[r]);
  }
}

TEST(SmawkTest, TiesPickLeftmost) {
  // Constant matrix: every column ties; leftmost must win.
  auto value = [](size_t, size_t) { return 5.0; };
  const std::vector<size_t> argmins = SmawkRowMinima(6, 6, value);
  for (size_t r = 0; r < 6; ++r) EXPECT_EQ(argmins[r], 0u);
}

}  // namespace
}  // namespace opthash::opt

#include "opt/milp_model.h"

#include <gtest/gtest.h>

#include "opt/objective.h"
#include "opt_test_util.h"

namespace opthash::opt {
namespace {

TEST(MilpModelTest, StatsMatchFormulationSizes) {
  const HashingProblem problem = testutil::RandomProblem(5, 3, 0.5, 2, 1);
  MilpModel model(problem);
  const MilpModelStats stats = model.Stats();
  // n = 5, b = 3: nb = 15 binaries + 15 error vars; n^2 b = 75 theta + 75
  // delta; constraints 5 + 2*15 + 3*75 + 3*75.
  EXPECT_EQ(stats.num_binary_vars, 15u);
  EXPECT_EQ(stats.num_error_vars, 15u);
  EXPECT_EQ(stats.num_theta_vars, 75u);
  EXPECT_EQ(stats.num_delta_vars, 75u);
  EXPECT_EQ(stats.num_assignment_constraints, 5u);
  EXPECT_EQ(stats.num_error_constraints, 30u);
  EXPECT_EQ(stats.num_theta_constraints, 225u);
  EXPECT_EQ(stats.num_delta_constraints, 225u);
  EXPECT_EQ(stats.TotalVariables(), 180u);
  EXPECT_EQ(stats.TotalConstraints(), 485u);
}

TEST(MilpModelTest, BigMIsMaxFrequency) {
  HashingProblem problem;
  problem.frequencies = {3.0, 17.0, 5.0};
  problem.num_buckets = 2;
  problem.lambda = 1.0;
  MilpModel model(problem);
  EXPECT_DOUBLE_EQ(model.BigM(), 17.0);
}

TEST(MilpModelTest, Theorem1EquivalenceOnRandomInstances) {
  // The heart of Theorem 1: for ANY feasible Z, the minimal completion of
  // (E, Theta, Delta) in Problem (2) reproduces the nonlinear objective of
  // Problem (1), and the completion is feasible.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(8, 3, 0.5, 2, seed, 40.0);
    MilpModel model(problem);
    Rng rng(seed + 500);
    for (int trial = 0; trial < 20; ++trial) {
      Assignment assignment(problem.NumElements());
      for (auto& bucket : assignment) {
        bucket = static_cast<int32_t>(rng.NextBounded(problem.num_buckets));
      }
      const MilpEvaluation eval = model.EvaluateAt(assignment);
      EXPECT_TRUE(eval.feasible) << "violation " << eval.max_violation;
      const double nonlinear =
          EvaluateObjective(problem, assignment).overall;
      EXPECT_NEAR(eval.linearized_objective, nonlinear, 1e-7)
          << "seed " << seed << " trial " << trial;
    }
  }
}

TEST(MilpModelTest, Theorem1EquivalenceLambdaOne) {
  for (uint64_t seed = 20; seed <= 25; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(10, 4, 1.0, 0, seed, 60.0);
    MilpModel model(problem);
    Rng rng(seed);
    Assignment assignment(problem.NumElements());
    for (auto& bucket : assignment) {
      bucket = static_cast<int32_t>(rng.NextBounded(problem.num_buckets));
    }
    const MilpEvaluation eval = model.EvaluateAt(assignment);
    EXPECT_TRUE(eval.feasible);
    EXPECT_NEAR(eval.linearized_objective,
                EvaluateObjective(problem, assignment).overall, 1e-7);
  }
}

TEST(MilpModelTest, Theorem1EquivalenceLambdaZero) {
  const HashingProblem problem = testutil::RandomProblem(6, 2, 0.0, 3, 30);
  MilpModel model(problem);
  const Assignment assignment = {0, 1, 0, 1, 0, 1};
  const MilpEvaluation eval = model.EvaluateAt(assignment);
  EXPECT_TRUE(eval.feasible);
  EXPECT_NEAR(eval.linearized_objective,
              EvaluateObjective(problem, assignment).overall, 1e-7);
}

TEST(MilpModelTest, ScalingIsOrderNSquaredB) {
  // §4.2: "Problem (2) consists of O(n^2 b) variables and constraints" —
  // doubling n quadruples theta/delta counts; doubling b doubles them.
  const HashingProblem small = testutil::RandomProblem(10, 4, 1.0, 0, 1);
  const HashingProblem double_n = testutil::RandomProblem(20, 4, 1.0, 0, 1);
  const HashingProblem double_b = testutil::RandomProblem(10, 8, 1.0, 0, 1);
  const auto base = MilpModel(small).Stats();
  const auto n2 = MilpModel(double_n).Stats();
  const auto b2 = MilpModel(double_b).Stats();
  EXPECT_EQ(n2.num_theta_vars, 4 * base.num_theta_vars);
  EXPECT_EQ(b2.num_theta_vars, 2 * base.num_theta_vars);
}

TEST(MilpModelTest, RealWorldScaleMatchesPaperClaim) {
  // §4.2: with tens of thousands of elements and thousands of buckets the
  // formulation reaches ~1e11 variables — the reason the paper (and we)
  // need BCD. Verify the census arithmetic at that scale.
  HashingProblem problem;
  problem.frequencies.assign(20000, 1.0);
  problem.num_buckets = 1000;
  problem.lambda = 1.0;
  const MilpModelStats stats = MilpModel(problem).Stats();
  EXPECT_GE(static_cast<double>(stats.TotalVariables()), 8e11);
}

}  // namespace
}  // namespace opthash::opt

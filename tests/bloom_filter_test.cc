#include "hashing/bloom_filter.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::hashing {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(4096, 3, /*seed=*/1);
  for (uint64_t key = 0; key < 300; ++key) filter.Add(key);
  for (uint64_t key = 0; key < 300; ++key) {
    EXPECT_TRUE(filter.MayContain(key)) << "false negative for " << key;
  }
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter filter(1024, 3, 2);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_FALSE(filter.MayContain(key));
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  constexpr size_t kInsertions = 5000;
  constexpr double kTargetFpr = 0.02;
  BloomFilter filter =
      BloomFilter::ForExpectedInsertions(kInsertions, kTargetFpr, 3);
  for (uint64_t key = 0; key < kInsertions; ++key) filter.Add(key);

  size_t false_positives = 0;
  constexpr uint64_t kProbes = 50000;
  for (uint64_t key = 1000000; key < 1000000 + kProbes; ++key) {
    if (filter.MayContain(key)) ++false_positives;
  }
  const double fpr = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(fpr, 2.5 * kTargetFpr);
  // The estimated FPR from the fill ratio should be in the same ballpark.
  EXPECT_NEAR(filter.EstimatedFpr(), fpr, 0.02);
}

TEST(BloomFilterTest, FillRatioGrowsWithInsertions) {
  BloomFilter filter(4096, 3, 4);
  EXPECT_DOUBLE_EQ(filter.FillRatio(), 0.0);
  for (uint64_t key = 0; key < 100; ++key) filter.Add(key);
  const double after_100 = filter.FillRatio();
  EXPECT_GT(after_100, 0.0);
  for (uint64_t key = 100; key < 1000; ++key) filter.Add(key);
  EXPECT_GT(filter.FillRatio(), after_100);
}

TEST(BloomFilterTest, DoubleAddIsIdempotentOnBits) {
  BloomFilter filter(512, 4, 5);
  filter.Add(77);
  const double fill = filter.FillRatio();
  filter.Add(77);
  EXPECT_DOUBLE_EQ(filter.FillRatio(), fill);
}

TEST(BloomFilterTest, SizingFormulaReasonable) {
  // m = -n ln(p) / ln(2)^2: for n = 1000, p = 0.01 -> ~9585 bits, k ~ 7.
  BloomFilter filter = BloomFilter::ForExpectedInsertions(1000, 0.01, 6);
  EXPECT_NEAR(static_cast<double>(filter.num_bits()), 9585.0, 10.0);
  EXPECT_EQ(filter.num_hashes(), 7u);
}

TEST(BloomFilterTest, MemoryBytesCoversBitArray) {
  BloomFilter filter(1024, 3, 7);
  EXPECT_EQ(filter.MemoryBytes(), 1024 / 8);
}

class BloomFprSweep : public ::testing::TestWithParam<double> {};

TEST_P(BloomFprSweep, ObservedFprWithinThreeXOfTarget) {
  const double target = GetParam();
  constexpr size_t kInsertions = 2000;
  BloomFilter filter =
      BloomFilter::ForExpectedInsertions(kInsertions, target, 8);
  for (uint64_t key = 0; key < kInsertions; ++key) filter.Add(key * 7 + 1);
  size_t false_positives = 0;
  constexpr uint64_t kProbes = 30000;
  for (uint64_t key = 0; key < kProbes; ++key) {
    if (filter.MayContain(0xABCDEF0000ULL + key)) ++false_positives;
  }
  const double fpr = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(fpr, 3.0 * target + 0.001);
}

INSTANTIATE_TEST_SUITE_P(Targets, BloomFprSweep,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1));

}  // namespace
}  // namespace opthash::hashing

// Property-style differential coverage for the SIMD kernel layer
// (src/sketch/kernels/): every dispatch tier available on this host must
// produce BIT-IDENTICAL results — estimates and raw counter tables — to
// the untouched per-key scalar reference paths, across random
// geometries, seeds, and batch sizes, including empty/single-item/
// unaligned-tail edges, the mmap view, and the windowed rings.
//
// Each KernelOps entry point has a named case here; the project linter
// (tools/lint/opthash_lint.py) enforces that lockstep, so a kernel can
// only gain a new entry point together with differential coverage.
//
// When OPTHASH_SIMD pins a tier (the scalar-forced CI leg), the suite
// honors the pin and tests that tier alone instead of force-switching
// past the override.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/span.h"
#include "hashing/hash_functions.h"
#include "io/bytes.h"
#include "io/sketch_snapshot.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/kernels/kernels.h"
#include "sketch/kernels/simd_dispatch.h"
#include "sketch/learned_count_min.h"
#include "sketch/windowed_sketch.h"

namespace opthash::sketch {
namespace {

using kernels::ActiveKernelTier;
using kernels::ForceKernelTier;
using kernels::HashKernelParams;
using kernels::KernelOps;
using kernels::KernelTier;
using kernels::KernelTierName;
using kernels::ResetKernelTierForTest;

// Restores default tier selection when a test body returns.
struct TierGuard {
  ~TierGuard() { ResetKernelTierForTest(); }
};

// The tiers a differential case iterates: every available tier normally,
// only the pinned tier when OPTHASH_SIMD is set (CI forces scalar and
// the suite must not switch away from it).
std::vector<KernelTier> TiersUnderTest() {
  if (const char* env = std::getenv("OPTHASH_SIMD");
      env != nullptr && env[0] != '\0') {
    return {ActiveKernelTier()};
  }
  return kernels::AvailableKernelTiers();
}

// Batch sizes hitting the empty, single-item, sub-vector, exact-vector,
// and unaligned-tail shapes of every kernel loop.
const size_t kBatchSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 31, 64, 65, 257};

std::vector<uint64_t> RandomKeys(size_t n, Rng& rng) {
  std::vector<uint64_t> keys(n);
  for (auto& key : keys) key = rng.NextUint64();
  return keys;
}

template <typename Sketch>
std::vector<uint8_t> CounterTableBytes(const Sketch& sketch) {
  io::ByteWriter writer;
  sketch.Serialize(writer);
  return writer.TakeBytes();
}

// ---------------------------------------------------------------------
// Kernel entry points, one named case each (linter-enforced lockstep).
// ---------------------------------------------------------------------

// hash_buckets: every tier must reproduce LinearHash bit for bit,
// including the degenerate ranges (1 maps everything to bucket 0;
// >= 2^61 leaves the reduced value unchanged) and the magic-multiply
// remainder for everything in between.
TEST(KernelHashBuckets, EveryTierMatchesLinearHashExactly) {
  Rng rng(101);
  const uint64_t ranges[] = {1,
                             2,
                             3,
                             5,
                             64,
                             1000,
                             16384,
                             (1ULL << 32) + 7,
                             (1ULL << 61) - 3,
                             (1ULL << 61) + 9,
                             std::numeric_limits<uint64_t>::max()};
  for (const uint64_t fixed_range : ranges) {
    for (int draw = 0; draw < 8; ++draw) {
      const uint64_t a =
          1 + rng.NextBounded(hashing::LinearHash::kPrime - 1);
      const uint64_t b = rng.NextBounded(hashing::LinearHash::kPrime);
      const hashing::LinearHash hash(fixed_range, a, b);
      const HashKernelParams params = HashKernelParams::From(hash);
      for (const size_t n : kBatchSizes) {
        const std::vector<uint64_t> keys = RandomKeys(n, rng);
        std::vector<uint64_t> out(n + 1, 0xabababababababab);
        for (const KernelTier tier : TiersUnderTest()) {
          const KernelOps* ops = [&] {
            EXPECT_TRUE(ForceKernelTier(tier).ok());
            return &kernels::ActiveKernels();
          }();
          ops->hash_buckets(params, keys.data(), n, out.data());
          for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(out[i], hash(keys[i]))
                << "tier=" << KernelTierName(tier)
                << " range=" << fixed_range << " i=" << i;
          }
          // The kernel must not write past n.
          ASSERT_EQ(out[n], 0xabababababababab);
        }
      }
    }
  }
  ResetKernelTierForTest();
}

// min_gather_u64: unsigned min-fold over a counter row, compared against
// the obvious per-element loop. Seeds include UINT64_MAX (the batch
// initial value) and 0 so the unsigned comparison in the vector tiers is
// exercised across the sign-bit boundary.
TEST(KernelMinGatherU64, EveryTierMatchesReferenceFold) {
  Rng rng(202);
  std::vector<uint64_t> row(512);
  for (auto& value : row) {
    // Mix huge and tiny counters so top-bit-set values appear.
    value = rng.NextBounded(4) == 0 ? ~rng.NextUint64() >> 1
                                    : rng.NextUint64();
  }
  for (const size_t n : kBatchSizes) {
    std::vector<uint64_t> idx(n);
    std::vector<uint64_t> seed(n);
    for (size_t i = 0; i < n; ++i) {
      idx[i] = rng.NextBounded(row.size());
      seed[i] = rng.NextBounded(3) == 0
                    ? std::numeric_limits<uint64_t>::max()
                    : rng.NextUint64();
    }
    std::vector<uint64_t> expected = seed;
    for (size_t i = 0; i < n; ++i) {
      expected[i] = std::min(expected[i], row[idx[i]]);
    }
    for (const KernelTier tier : TiersUnderTest()) {
      ASSERT_TRUE(ForceKernelTier(tier).ok());
      std::vector<uint64_t> got = seed;
      kernels::ActiveKernels().min_gather_u64(row.data(), idx.data(), n,
                                              got.data());
      ASSERT_EQ(got, expected) << "tier=" << KernelTierName(tier)
                               << " n=" << n;
    }
  }
  ResetKernelTierForTest();
}

// gather_signed_i64: the CountSketch signed gather (sign bucket 0 means
// negate), against the reference loop, with negative counters present.
TEST(KernelGatherSignedI64, EveryTierMatchesReferenceGather) {
  Rng rng(303);
  std::vector<int64_t> row(512);
  for (auto& value : row) value = static_cast<int64_t>(rng.NextUint64());
  for (const size_t n : kBatchSizes) {
    std::vector<uint64_t> idx(n);
    std::vector<uint64_t> sign(n);
    for (size_t i = 0; i < n; ++i) {
      idx[i] = rng.NextBounded(row.size());
      sign[i] = rng.NextBounded(2);
    }
    std::vector<int64_t> expected(n);
    for (size_t i = 0; i < n; ++i) {
      expected[i] = sign[i] == 0 ? -row[idx[i]] : row[idx[i]];
    }
    for (const KernelTier tier : TiersUnderTest()) {
      ASSERT_TRUE(ForceKernelTier(tier).ok());
      std::vector<int64_t> got(n, -1);
      kernels::ActiveKernels().gather_signed_i64(row.data(), idx.data(),
                                                 sign.data(), n,
                                                 got.data());
      ASSERT_EQ(got, expected) << "tier=" << KernelTierName(tier)
                               << " n=" << n;
    }
  }
  ResetKernelTierForTest();
}

// scatter_add_u64: heavy duplicate indices — every tier must apply all
// increments (the contract pins scatters to the shared sequential loop
// precisely so intra-batch collisions cannot be lost).
TEST(KernelScatterAddU64, EveryTierAppliesDuplicateIndices) {
  Rng rng(404);
  for (const size_t n : kBatchSizes) {
    std::vector<uint64_t> idx(n);
    for (auto& index : idx) index = rng.NextBounded(8);
    std::vector<uint64_t> expected(16, 0);
    for (size_t i = 0; i < n; ++i) ++expected[idx[i]];
    for (const KernelTier tier : TiersUnderTest()) {
      ASSERT_TRUE(ForceKernelTier(tier).ok());
      std::vector<uint64_t> row(16, 0);
      kernels::ActiveKernels().scatter_add_u64(row.data(), idx.data(), n);
      ASSERT_EQ(row, expected) << "tier=" << KernelTierName(tier)
                               << " n=" << n;
    }
  }
  ResetKernelTierForTest();
}

// scatter_add_signed_i64: duplicate indices with mixed signs cancel and
// accumulate exactly alike on every tier.
TEST(KernelScatterAddSignedI64, EveryTierAppliesSignedDuplicates) {
  Rng rng(505);
  for (const size_t n : kBatchSizes) {
    std::vector<uint64_t> idx(n);
    std::vector<uint64_t> sign(n);
    for (size_t i = 0; i < n; ++i) {
      idx[i] = rng.NextBounded(8);
      sign[i] = rng.NextBounded(2);
    }
    std::vector<int64_t> expected(16, 0);
    for (size_t i = 0; i < n; ++i) {
      expected[idx[i]] += sign[i] == 0 ? -1 : 1;
    }
    for (const KernelTier tier : TiersUnderTest()) {
      ASSERT_TRUE(ForceKernelTier(tier).ok());
      std::vector<int64_t> row(16, 0);
      kernels::ActiveKernels().scatter_add_signed_i64(
          row.data(), idx.data(), sign.data(), n);
      ASSERT_EQ(row, expected) << "tier=" << KernelTierName(tier)
                               << " n=" << n;
    }
  }
  ResetKernelTierForTest();
}

// ---------------------------------------------------------------------
// Sketch-level differentials: batch paths vs the per-key scalar
// reference, per tier, estimates AND serialized counter tables.
// ---------------------------------------------------------------------

struct Geometry {
  size_t width;
  size_t depth;
  uint64_t seed;
};

const Geometry kGeometries[] = {
    {1, 1, 7},   {2, 3, 11},    {3, 1, 13},   {7, 5, 17},
    {64, 4, 19}, {1000, 2, 23}, {4096, 6, 29}};

TEST(CountMinDifferential, BatchEstimatesMatchPerKeyOnEveryTier) {
  TierGuard guard;
  Rng rng(606);
  for (const Geometry& g : kGeometries) {
    CountMinSketch sketch(g.width, g.depth, g.seed);
    const std::vector<uint64_t> trace =
        RandomKeys(2000, rng);
    sketch.UpdateBatch(Span<const uint64_t>(trace));
    for (const size_t n : kBatchSizes) {
      std::vector<uint64_t> keys = RandomKeys(n, rng);
      // Mix in keys that are actually present.
      for (size_t i = 0; i < n; i += 3) keys[i] = trace[i % trace.size()];
      std::vector<uint64_t> expected(n);
      for (size_t i = 0; i < n; ++i) expected[i] = sketch.Estimate(keys[i]);
      for (const KernelTier tier : TiersUnderTest()) {
        ASSERT_TRUE(ForceKernelTier(tier).ok());
        std::vector<uint64_t> got(n, 0);
        sketch.EstimateBatch(Span<const uint64_t>(keys),
                             Span<uint64_t>(got));
        ASSERT_EQ(got, expected)
            << "tier=" << KernelTierName(tier) << " width=" << g.width
            << " depth=" << g.depth << " n=" << n;
      }
    }
  }
}

TEST(CountMinDifferential, BatchUpdateTablesBitIdenticalOnEveryTier) {
  TierGuard guard;
  Rng rng(707);
  for (const Geometry& g : kGeometries) {
    // Reference: the untouched per-key Update path.
    CountMinSketch reference(g.width, g.depth, g.seed);
    const std::vector<uint64_t> trace = RandomKeys(3000, rng);
    for (const uint64_t key : trace) reference.Update(key);
    const std::vector<uint8_t> expected = CounterTableBytes(reference);
    for (const KernelTier tier : TiersUnderTest()) {
      ASSERT_TRUE(ForceKernelTier(tier).ok());
      CountMinSketch batched = reference.EmptyClone();
      batched.UpdateBatch(Span<const uint64_t>(trace));
      ASSERT_EQ(CounterTableBytes(batched), expected)
          << "tier=" << KernelTierName(tier) << " width=" << g.width
          << " depth=" << g.depth;
    }
  }
}

TEST(CountSketchDifferential, BatchEstimatesMatchPerKeyOnEveryTier) {
  TierGuard guard;
  Rng rng(808);
  for (const Geometry& g : kGeometries) {
    CountSketch sketch(g.width, g.depth, g.seed);
    const std::vector<uint64_t> trace = RandomKeys(2000, rng);
    sketch.UpdateBatch(Span<const uint64_t>(trace));
    for (const size_t n : kBatchSizes) {
      std::vector<uint64_t> keys = RandomKeys(n, rng);
      for (size_t i = 0; i < n; i += 3) keys[i] = trace[i % trace.size()];
      std::vector<int64_t> expected(n);
      std::vector<uint64_t> expected_clamped(n);
      for (size_t i = 0; i < n; ++i) {
        expected[i] = sketch.Estimate(keys[i]);
        expected_clamped[i] = sketch.EstimateNonNegative(keys[i]);
      }
      for (const KernelTier tier : TiersUnderTest()) {
        ASSERT_TRUE(ForceKernelTier(tier).ok());
        std::vector<int64_t> got(n, -99);
        std::vector<uint64_t> got_clamped(n, 99);
        sketch.EstimateBatch(Span<const uint64_t>(keys),
                             Span<int64_t>(got));
        sketch.EstimateNonNegativeBatch(Span<const uint64_t>(keys),
                                        Span<uint64_t>(got_clamped));
        ASSERT_EQ(got, expected)
            << "tier=" << KernelTierName(tier) << " width=" << g.width
            << " depth=" << g.depth << " n=" << n;
        ASSERT_EQ(got_clamped, expected_clamped)
            << "tier=" << KernelTierName(tier) << " width=" << g.width;
      }
    }
  }
}

TEST(CountSketchDifferential, BatchUpdateTablesBitIdenticalOnEveryTier) {
  TierGuard guard;
  Rng rng(909);
  for (const Geometry& g : kGeometries) {
    CountSketch reference(g.width, g.depth, g.seed);
    const std::vector<uint64_t> trace = RandomKeys(3000, rng);
    for (const uint64_t key : trace) reference.Update(key);
    const std::vector<uint8_t> expected = CounterTableBytes(reference);
    for (const KernelTier tier : TiersUnderTest()) {
      ASSERT_TRUE(ForceKernelTier(tier).ok());
      CountSketch batched = reference.EmptyClone();
      batched.UpdateBatch(Span<const uint64_t>(trace));
      ASSERT_EQ(CounterTableBytes(batched), expected)
          << "tier=" << KernelTierName(tier) << " width=" << g.width
          << " depth=" << g.depth;
    }
  }
}

TEST(LearnedCountMinDifferential, InheritsKernelsThroughRemainder) {
  TierGuard guard;
  Rng rng(1010);
  std::vector<uint64_t> heavy;
  for (uint64_t key = 0; key < 20; ++key) heavy.push_back(key * 1000);
  auto created = LearnedCountMinSketch::Create(400, 3, heavy, 31);
  ASSERT_TRUE(created.ok());
  LearnedCountMinSketch& sketch = created.value();
  std::vector<uint64_t> trace = RandomKeys(4000, rng);
  for (size_t i = 0; i < trace.size(); i += 4) {
    trace[i] = heavy[i % heavy.size()];
  }
  sketch.UpdateBatch(Span<const uint64_t>(trace));
  for (const size_t n : kBatchSizes) {
    std::vector<uint64_t> keys = RandomKeys(n, rng);
    for (size_t i = 0; i < n; i += 2) keys[i] = trace[i % trace.size()];
    std::vector<uint64_t> expected(n);
    for (size_t i = 0; i < n; ++i) expected[i] = sketch.Estimate(keys[i]);
    for (const KernelTier tier : TiersUnderTest()) {
      ASSERT_TRUE(ForceKernelTier(tier).ok());
      std::vector<uint64_t> got(n, 0);
      sketch.EstimateBatch(Span<const uint64_t>(keys),
                           Span<uint64_t>(got));
      ASSERT_EQ(got, expected) << "tier=" << KernelTierName(tier)
                               << " n=" << n;
    }
  }
}

TEST(MappedViewDifferential, MmapBatchMatchesSketchOnEveryTier) {
  TierGuard guard;
  Rng rng(1111);
  CountMinSketch sketch(777, 4, 41);
  const std::vector<uint64_t> trace = RandomKeys(3000, rng);
  sketch.UpdateBatch(Span<const uint64_t>(trace));
  const std::string path =
      ::testing::TempDir() + "/kernel_differential_cms.snapshot";
  ASSERT_TRUE(io::SaveSketchSnapshot(path, sketch).ok());
  auto view = io::MappedCountMinView::Open(path);
  ASSERT_TRUE(view.ok());
  for (const size_t n : kBatchSizes) {
    std::vector<uint64_t> keys = RandomKeys(n, rng);
    for (size_t i = 0; i < n; i += 3) keys[i] = trace[i % trace.size()];
    std::vector<uint64_t> expected(n);
    for (size_t i = 0; i < n; ++i) expected[i] = sketch.Estimate(keys[i]);
    for (const KernelTier tier : TiersUnderTest()) {
      ASSERT_TRUE(ForceKernelTier(tier).ok());
      std::vector<uint64_t> got(n, 0);
      view.value().EstimateBatch(Span<const uint64_t>(keys),
                                 Span<uint64_t>(got));
      ASSERT_EQ(got, expected) << "tier=" << KernelTierName(tier)
                               << " n=" << n;
    }
  }
  std::remove(path.c_str());
}

TEST(WindowedDifferential, RingQueriesMatchAcrossTiers) {
  TierGuard guard;
  Rng rng(1212);
  const std::vector<uint64_t> trace = RandomKeys(5000, rng);
  const std::vector<uint64_t> probes = RandomKeys(300, rng);

  // Reference ring built and queried on the scalar tier.
  ASSERT_TRUE(ForceKernelTier(KernelTier::kScalar).ok());
  auto reference = WindowedSketch<CountMinSketch>::Create(
      CountMinSketch(512, 4, 51), /*num_windows=*/4,
      /*window_items=*/1024);
  ASSERT_TRUE(reference.ok());
  reference.value().UpdateBatch(Span<const uint64_t>(trace));
  std::vector<double> expected(probes.size());
  reference.value().EstimateBatch(Span<const uint64_t>(probes),
                                  Span<double>(expected));

  for (const KernelTier tier : TiersUnderTest()) {
    ASSERT_TRUE(ForceKernelTier(tier).ok());
    auto ring = WindowedSketch<CountMinSketch>::Create(
        CountMinSketch(512, 4, 51), /*num_windows=*/4,
        /*window_items=*/1024);
    ASSERT_TRUE(ring.ok());
    ring.value().UpdateBatch(Span<const uint64_t>(trace));
    std::vector<double> got(probes.size(), -1.0);
    ring.value().EstimateBatch(Span<const uint64_t>(probes),
                               Span<double>(got));
    ASSERT_EQ(got, expected) << "tier=" << KernelTierName(tier);
  }
}

// Concurrent readers keep getting exact answers while the active tier is
// swapped under them — the documented benign-race contract of the
// dispatcher (every tier is bit-identical, the ops pointer swap is
// atomic). This is the suite's `threaded`-label justification; TSan runs
// it.
TEST(DispatchSwapDifferential, ReadersStayExactAcrossConcurrentTierSwaps) {
  TierGuard guard;
  Rng rng(1313);
  CountMinSketch sketch(2048, 4, 61);
  const std::vector<uint64_t> trace = RandomKeys(4000, rng);
  sketch.UpdateBatch(Span<const uint64_t>(trace));
  std::vector<uint64_t> probes = RandomKeys(256, rng);
  for (size_t i = 0; i < probes.size(); i += 2) {
    probes[i] = trace[i % trace.size()];
  }
  std::vector<uint64_t> expected(probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    expected[i] = sketch.Estimate(probes[i]);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::vector<uint64_t> got(probes.size());
      while (!stop.load(std::memory_order_acquire)) {
        sketch.EstimateBatch(Span<const uint64_t>(probes),
                             Span<uint64_t>(got));
        if (got != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  const std::vector<KernelTier> tiers = TiersUnderTest();
  for (int swap = 0; swap < 200; ++swap) {
    ASSERT_TRUE(ForceKernelTier(tiers[swap % tiers.size()]).ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace opthash::sketch

// The sharded ingestion engine (stream/sharded_ingest.h): replicated
// ingestion of linear sketches must match sequential ingestion *exactly*
// at every thread count, key-partitioned ingestion of the counter-based
// summaries must stay within their deterministic bounds, and the
// custom-replica core must support arbitrary accumulators (the CLI's
// OptHashEstimator delta path).

#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/span.h"
#include "core/opt_hash_estimator.h"
#include "sketch/ams_sketch.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/learned_count_min.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"
#include "stream/sharded_ingest.h"

namespace opthash::stream {
namespace {

std::vector<uint64_t> MakeTrace(size_t length, size_t universe, uint64_t seed,
                                std::unordered_map<uint64_t, uint64_t>* truth) {
  Rng rng(seed);
  ZipfSampler zipf(universe, 1.1);
  std::vector<uint64_t> trace(length);
  for (auto& key : trace) {
    key = zipf.Sample(rng);
    if (truth != nullptr) ++(*truth)[key];
  }
  return trace;
}

ShardedIngestConfig Config(size_t threads, ShardMode mode,
                           size_t block_size = 1024) {
  ShardedIngestConfig config;
  config.num_threads = threads;
  config.block_size = block_size;
  config.mode = mode;
  return config;
}

TEST(ShardedIngestConfigTest, Validation) {
  EXPECT_TRUE(Config(1, ShardMode::kReplicated).Validate().ok());
  EXPECT_TRUE(Config(0, ShardMode::kReplicated).Validate().ok());  // auto
  EXPECT_FALSE(Config(1, ShardMode::kReplicated, 0).Validate().ok());
  EXPECT_FALSE(Config(100000, ShardMode::kReplicated).Validate().ok());
}

TEST(ShardedIngestHelpersTest, ThreadAndBlockMath) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(3), 3u);
  EXPECT_EQ(NumBlocks(0, 16), 0u);
  EXPECT_EQ(NumBlocks(16, 16), 1u);
  EXPECT_EQ(NumBlocks(17, 16), 2u);
}

TEST(ShardedIngestHelpersTest, KeyShardIsStableAndInRange) {
  for (uint64_t key = 0; key < 1000; ++key) {
    const size_t shard = KeyShardOf(key, 4);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, KeyShardOf(key, 4));  // Deterministic.
  }
  EXPECT_EQ(KeyShardOf(123, 1), 0u);
}

TEST(ShardedIngestTest, CountMinMatchesSequentialAtEveryThreadCount) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 3, &truth);

  sketch::CountMinSketch sequential(256, 4, 7);
  sequential.UpdateBatch(Span<const uint64_t>(trace));

  for (size_t threads = 1; threads <= 4; ++threads) {
    sketch::CountMinSketch sharded(256, 4, 7);
    auto stats = ShardedIngest(Span<const uint64_t>(trace),
                               Config(threads, ShardMode::kReplicated),
                               sharded);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats.value().threads_used, threads);
    EXPECT_EQ(stats.value().num_items, trace.size());
    EXPECT_EQ(sharded.total_count(), sequential.total_count());
    for (const auto& [key, count] : truth) {
      EXPECT_EQ(sharded.Estimate(key), sequential.Estimate(key))
          << "threads=" << threads << " key=" << key;
    }
  }
}

TEST(ShardedIngestTest, CountSketchMatchesSequentialAtEveryThreadCount) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 5, &truth);

  sketch::CountSketch sequential(256, 5, 11);
  sequential.UpdateBatch(Span<const uint64_t>(trace));

  for (size_t threads = 1; threads <= 4; ++threads) {
    sketch::CountSketch sharded(256, 5, 11);
    auto stats = ShardedIngest(Span<const uint64_t>(trace),
                               Config(threads, ShardMode::kReplicated),
                               sharded);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (const auto& [key, count] : truth) {
      EXPECT_EQ(sharded.Estimate(key), sequential.Estimate(key));
    }
  }
}

TEST(ShardedIngestTest, AmsMatchesSequentialAtEveryThreadCount) {
  const auto trace = MakeTrace(20000, 600, 7, nullptr);

  sketch::AmsSketch sequential(5, 8, 13);
  sequential.UpdateBatch(Span<const uint64_t>(trace));

  for (size_t threads = 1; threads <= 4; ++threads) {
    sketch::AmsSketch sharded(5, 8, 13);
    auto stats = ShardedIngest(Span<const uint64_t>(trace),
                               Config(threads, ShardMode::kReplicated),
                               sharded);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_DOUBLE_EQ(sharded.EstimateF2(), sequential.EstimateF2());
  }
}

TEST(ShardedIngestTest, LearnedCountMinMatchesSequentialAtEveryThreadCount) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 9, &truth);
  const std::vector<uint64_t> heavy = sketch::SelectTopKeys(truth, 20);

  auto sequential = sketch::LearnedCountMinSketch::Create(500, 4, heavy, 17);
  ASSERT_TRUE(sequential.ok());
  sequential.value().UpdateBatch(Span<const uint64_t>(trace));

  for (size_t threads = 1; threads <= 4; ++threads) {
    auto sharded = sketch::LearnedCountMinSketch::Create(500, 4, heavy, 17);
    ASSERT_TRUE(sharded.ok());
    auto stats = ShardedIngest(Span<const uint64_t>(trace),
                               Config(threads, ShardMode::kReplicated),
                               sharded.value());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (const auto& [key, count] : truth) {
      EXPECT_EQ(sharded.value().Estimate(key),
                sequential.value().Estimate(key));
    }
  }
}

TEST(ShardedIngestTest, SingleThreadIsBitIdenticalForOrderSensitiveSketches) {
  // The deterministic fallback must not clone/merge: a conservative-update
  // CMS (order-sensitive) ingested with threads=1 equals plain sequential
  // ingestion exactly.
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(20000, 500, 11, &truth);

  sketch::CountMinSketch sequential(64, 3, 19, /*conservative_update=*/true);
  for (uint64_t key : trace) sequential.Update(key);

  sketch::CountMinSketch sharded(64, 3, 19, /*conservative_update=*/true);
  auto stats = ShardedIngest(Span<const uint64_t>(trace),
                             Config(1, ShardMode::kReplicated), sharded);
  ASSERT_TRUE(stats.ok());
  for (const auto& [key, count] : truth) {
    EXPECT_EQ(sharded.Estimate(key), sequential.Estimate(key));
  }
}

TEST(ShardedIngestTest, ConservativeCmsShardedStaysUpperBound) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(20000, 500, 13, &truth);
  sketch::CountMinSketch sharded(64, 3, 23, /*conservative_update=*/true);
  auto stats = ShardedIngest(Span<const uint64_t>(trace),
                             Config(4, ShardMode::kReplicated), sharded);
  ASSERT_TRUE(stats.ok());
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sharded.Estimate(key), count);
  }
}

TEST(ShardedIngestTest, MisraGriesKeyPartitionedStaysWithinBound) {
  constexpr size_t kCapacity = 64;
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 15, &truth);

  for (size_t threads = 1; threads <= 4; ++threads) {
    sketch::MisraGries sharded(kCapacity);
    auto stats = ShardedIngest(Span<const uint64_t>(trace),
                               Config(threads, ShardMode::kKeyPartitioned),
                               sharded);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_LE(sharded.size(), kCapacity);
    // Merging the per-shard summaries sums their error bounds, which
    // total at most n/(capacity + 1).
    const double bound =
        static_cast<double>(trace.size()) / static_cast<double>(kCapacity + 1);
    for (const auto& [key, count] : truth) {
      const uint64_t estimate = sharded.Estimate(key);
      EXPECT_LE(estimate, count);
      EXPECT_LE(static_cast<double>(count - estimate), bound + 1.0)
          << "threads=" << threads;
    }
  }
}

TEST(ShardedIngestTest, SpaceSavingKeyPartitionedStaysUpperBound) {
  constexpr size_t kCapacity = 64;
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 17, &truth);

  for (size_t threads = 2; threads <= 4; ++threads) {
    sketch::SpaceSaving sharded(kCapacity);
    auto stats = ShardedIngest(Span<const uint64_t>(trace),
                               Config(threads, ShardMode::kKeyPartitioned),
                               sharded);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_LE(sharded.size(), kCapacity);
    for (const auto& [key, count] : truth) {
      EXPECT_GE(sharded.Estimate(key), count) << "threads=" << threads;
    }
  }
}

TEST(ShardedIngestTest, RejectsInvalidConfig) {
  const auto trace = MakeTrace(100, 50, 19, nullptr);
  sketch::CountMinSketch sketch(64, 2, 1);
  EXPECT_FALSE(ShardedIngest(Span<const uint64_t>(trace),
                             Config(2, ShardMode::kReplicated, 0), sketch)
                   .ok());
}

TEST(ShardedIngestTest, EmptyTraceIsANoOp) {
  std::vector<uint64_t> empty;
  sketch::CountMinSketch sketch(64, 2, 1);
  auto stats = ShardedIngest(Span<const uint64_t>(empty),
                             Config(4, ShardMode::kReplicated), sketch);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().num_items, 0u);
  EXPECT_EQ(sketch.total_count(), 0u);
}

TEST(ShardedIngestCustomTest, VectorAccumulatorsSumExactly) {
  // The CLI's OptHashEstimator path in miniature: per-worker count
  // vectors merged by addition must equal exact sequential counts.
  constexpr size_t kUniverse = 200;
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(20000, kUniverse, 21, &truth);

  for (size_t threads = 1; threads <= 4; ++threads) {
    std::vector<uint64_t> counts(kUniverse + 1, 0);
    auto stats = ShardedIngestCustom(
        Span<const uint64_t>(trace), Config(threads, ShardMode::kReplicated),
        [](size_t) { return std::vector<uint64_t>(kUniverse + 1, 0); },
        [](std::vector<uint64_t>& replica, size_t /*worker*/,
           Span<const uint64_t> block) {
          for (uint64_t key : block) ++replica[key];
        },
        [&counts](std::vector<uint64_t>& replica) {
          for (size_t i = 0; i < counts.size(); ++i) counts[i] += replica[i];
          return Status::OK();
        });
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (const auto& [key, count] : truth) {
      EXPECT_EQ(counts[key], count) << "threads=" << threads;
    }
  }
}

TEST(ShardedIngestCustomTest, MergeFailurePropagates) {
  const auto trace = MakeTrace(100, 50, 23, nullptr);
  auto stats = ShardedIngestCustom(
      Span<const uint64_t>(trace), Config(2, ShardMode::kReplicated),
      [](size_t) { return 0; }, [](int&, size_t, Span<const uint64_t>) {},
      [](int&) { return Status::Internal("merge exploded"); });
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInternal);
}

TEST(OptHashShardedApplyTest, DeltaPathMatchesSequentialUpdates) {
  // Train a tiny estimator, then apply the same stream once via Update and
  // once via the sharded AccumulateUpdates/ApplyBucketDeltas path.
  std::vector<core::PrefixElement> prefix;
  Rng feature_rng(1);
  for (size_t i = 0; i < 10; ++i) {
    prefix.push_back({.id = 1000 + i,
                      .frequency = 100.0 + static_cast<double>(i % 3),
                      .features = {5.0 + feature_rng.NextGaussian() * 0.2}});
  }
  for (size_t i = 0; i < 15; ++i) {
    prefix.push_back({.id = 2000 + i,
                      .frequency = 2.0 + static_cast<double>(i % 2),
                      .features = {-5.0 + feature_rng.NextGaussian() * 0.2}});
  }
  core::OptHashConfig config;
  config.total_buckets = 40;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kNone;
  auto sequential = core::OptHashEstimator::Train(config, prefix);
  auto sharded = core::OptHashEstimator::Train(config, prefix);
  ASSERT_TRUE(sequential.ok() && sharded.ok());

  // A stream hitting both stored and unseen ids.
  std::vector<uint64_t> stream;
  Rng rng(25);
  for (size_t t = 0; t < 5000; ++t) {
    stream.push_back(rng.NextBounded(2) == 0 ? 1000 + rng.NextBounded(10)
                                             : 2000 + rng.NextBounded(20));
  }
  for (uint64_t id : stream) sequential.value().Update({id, nullptr});

  for (size_t threads = 1; threads <= 4; ++threads) {
    auto fresh = core::OptHashEstimator::Train(config, prefix);
    ASSERT_TRUE(fresh.ok());
    core::OptHashEstimator& estimator = fresh.value();
    auto stats = ShardedIngestCustom(
        Span<const uint64_t>(stream), Config(threads, ShardMode::kReplicated),
        [&estimator](size_t) {
          return std::vector<double>(estimator.num_buckets(), 0.0);
        },
        [&estimator](std::vector<double>& deltas, size_t /*worker*/,
                     Span<const uint64_t> block) {
          estimator.AccumulateUpdates(block, deltas);
        },
        [&estimator](std::vector<double>& deltas) {
          return estimator.ApplyBucketDeltas(deltas);
        });
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    for (size_t j = 0; j < estimator.num_buckets(); ++j) {
      EXPECT_DOUBLE_EQ(estimator.BucketFrequency(j),
                       sequential.value().BucketFrequency(j))
          << "threads=" << threads << " bucket=" << j;
    }
  }
}

TEST(OptHashShardedApplyTest, ApplyBucketDeltasRejectsWrongSize) {
  std::vector<core::PrefixElement> prefix;
  for (size_t i = 0; i < 10; ++i) {
    prefix.push_back({.id = i, .frequency = 5.0, .features = {1.0}});
  }
  core::OptHashConfig config;
  config.total_buckets = 30;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kNone;
  auto estimator = core::OptHashEstimator::Train(config, prefix);
  ASSERT_TRUE(estimator.ok());
  std::vector<double> wrong(estimator.value().num_buckets() + 1, 0.0);
  EXPECT_FALSE(estimator.value().ApplyBucketDeltas(wrong).ok());
}

}  // namespace
}  // namespace opthash::stream

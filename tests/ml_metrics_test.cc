#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace opthash::ml {
namespace {

TEST(AccuracyTest, PerfectAndZero) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 2}, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 2}, {1, 2, 0}), 0.0);
}

TEST(AccuracyTest, Partial) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 0, 1, 1}, {0, 1, 1, 0}), 0.5);
}

TEST(ConfusionMatrixTest, CountsPlacements) {
  const auto matrix = ConfusionMatrix({0, 0, 1, 1, 1}, {0, 1, 1, 1, 0}, 2);
  EXPECT_EQ(matrix[0][0], 1u);
  EXPECT_EQ(matrix[0][1], 1u);
  EXPECT_EQ(matrix[1][0], 1u);
  EXPECT_EQ(matrix[1][1], 2u);
}

TEST(ConfusionMatrixTest, RowsSumToClassCounts) {
  const std::vector<int> labels = {2, 2, 0, 1, 2, 0};
  const std::vector<int> predictions = {2, 1, 0, 1, 0, 0};
  const auto matrix = ConfusionMatrix(labels, predictions, 3);
  size_t class2_total = matrix[2][0] + matrix[2][1] + matrix[2][2];
  EXPECT_EQ(class2_total, 3u);
}

TEST(MacroF1Test, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 2, 0}, {0, 1, 2, 0}, 3), 1.0);
}

TEST(MacroF1Test, KnownValue) {
  // Class 0: tp=1, fp=1, fn=0 -> p=0.5, r=1, f1=2/3.
  // Class 1: tp=1, fp=0, fn=1 -> p=1, r=0.5, f1=2/3.
  const double f1 = MacroF1({0, 0, 1, 1}, {0, 1, 1, 1}, 2);
  // Class 0: tp=1 (index 0), fn=1 (index 1 predicted 1), fp=0.
  // Class 1: tp=2, fp=1, fn=0.
  // f1_0 = 2*1*0.5/1.5 = 2/3; f1_1 = 2*(2/3)*1/(5/3) = 0.8.
  EXPECT_NEAR(f1, (2.0 / 3.0 + 0.8) / 2.0, 1e-12);
}

TEST(MacroF1Test, AbsentClassesSkipped) {
  // Class 2 never appears in labels or predictions.
  const double f1 = MacroF1({0, 1}, {0, 1}, 3);
  EXPECT_DOUBLE_EQ(f1, 1.0);
}

TEST(MacroF1Test, ClassWithNoTruePositives) {
  const double f1 = MacroF1({0, 0}, {1, 1}, 2);
  EXPECT_DOUBLE_EQ(f1, 0.0);
}

}  // namespace
}  // namespace opthash::ml

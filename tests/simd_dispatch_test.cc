// The dispatch shim itself: tier naming, availability, forced selection
// (by enum and by OPTHASH_SIMD-style name), readable errors for
// unavailable or unknown tiers, and the environment-override status that
// serving tools check at startup. The project linter requires every
// KernelTier enumerator to appear here by name, so a new tier cannot
// ship without dispatch coverage.

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"
#include "sketch/kernels/simd_dispatch.h"

namespace opthash::sketch::kernels {
namespace {

struct TierGuard {
  ~TierGuard() { ResetKernelTierForTest(); }
};

TEST(SimdDispatchTest, TierNamesAreTheOverrideVocabulary) {
  EXPECT_EQ(KernelTierName(KernelTier::kScalar), "scalar");
  EXPECT_EQ(KernelTierName(KernelTier::kAvx2), "avx2");
  EXPECT_EQ(KernelTierName(KernelTier::kNeon), "neon");
}

TEST(SimdDispatchTest, ScalarIsAlwaysAvailableAndListedLast) {
  EXPECT_TRUE(KernelTierAvailable(KernelTier::kScalar));
  const auto tiers = AvailableKernelTiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.back(), KernelTier::kScalar);
  // The default pick is the head of the availability order.
  EXPECT_EQ(BestAvailableKernelTier(), tiers.front());
}

TEST(SimdDispatchTest, ForceSelectsEveryAvailableTier) {
  TierGuard guard;
  for (const KernelTier tier : AvailableKernelTiers()) {
    ASSERT_TRUE(ForceKernelTier(tier).ok());
    EXPECT_EQ(ActiveKernelTier(), tier);
    // The ops set follows the tier atomically.
    EXPECT_NE(ActiveKernels().hash_buckets, nullptr);
  }
}

TEST(SimdDispatchTest, ForceByNameMatchesForceByTier) {
  TierGuard guard;
  for (const KernelTier tier : AvailableKernelTiers()) {
    ASSERT_TRUE(
        ForceKernelTierByName(std::string(KernelTierName(tier))).ok());
    EXPECT_EQ(ActiveKernelTier(), tier);
  }
}

TEST(SimdDispatchTest, UnknownTierNameFailsReadably) {
  TierGuard guard;
  const KernelTier before = ActiveKernelTier();
  const Status status = ForceKernelTierByName("sse9");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("sse9"), std::string::npos);
  EXPECT_NE(status.message().find("scalar"), std::string::npos);
  // Selection unchanged on failure.
  EXPECT_EQ(ActiveKernelTier(), before);
}

TEST(SimdDispatchTest, UnavailableTierFailsWithAvailableList) {
  TierGuard guard;
  for (const KernelTier tier :
       {KernelTier::kScalar, KernelTier::kAvx2, KernelTier::kNeon}) {
    if (KernelTierAvailable(tier)) continue;
    const KernelTier before = ActiveKernelTier();
    const Status status = ForceKernelTier(tier);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(
        status.message().find(std::string(KernelTierName(tier))),
        std::string::npos);
    EXPECT_NE(status.message().find("available"), std::string::npos);
    EXPECT_EQ(ActiveKernelTier(), before);
  }
}

TEST(SimdDispatchTest, EnvOverrideIsHonoredWhenSet) {
  // Under a pinned run (the scalar-forced CI leg exports OPTHASH_SIMD
  // before any test runs) the initial selection must match the pin and
  // the env status must be OK. Without the variable the default pick is
  // the best available tier.
  TierGuard guard;
  ResetKernelTierForTest();
  const char* env = std::getenv("OPTHASH_SIMD");
  if (env != nullptr && env[0] != '\0') {
    EXPECT_TRUE(KernelEnvStatus().ok())
        << "test harness exported an invalid OPTHASH_SIMD";
    EXPECT_EQ(KernelTierName(ActiveKernelTier()), env);
  } else {
    EXPECT_TRUE(KernelEnvStatus().ok());
    EXPECT_EQ(ActiveKernelTier(), BestAvailableKernelTier());
  }
}

TEST(SimdDispatchTest, InvalidEnvValueSurfacesThroughEnvStatus) {
  // setenv + re-init in-process: the stored status must describe the bad
  // value while the selection falls back to the best available tier, so
  // library users keep working and tools can fail loudly.
  TierGuard guard;
  const char* old = std::getenv("OPTHASH_SIMD");
  const std::string saved = old != nullptr ? old : "";
  ASSERT_EQ(setenv("OPTHASH_SIMD", "avx512-typo", 1), 0);
  ResetKernelTierForTest();
  const Status status = KernelEnvStatus();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("avx512-typo"), std::string::npos);
  EXPECT_EQ(ActiveKernelTier(), BestAvailableKernelTier());
  if (saved.empty()) {
    unsetenv("OPTHASH_SIMD");
  } else {
    setenv("OPTHASH_SIMD", saved.c_str(), 1);
  }
  ResetKernelTierForTest();
}

}  // namespace
}  // namespace opthash::sketch::kernels

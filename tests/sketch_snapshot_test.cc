// Round-trip tests for the binary sketch payloads: a restored sketch must
// answer every query identically to the original, keep ingesting
// correctly (the checkpoint/resume contract), and corrupt snapshots must
// be rejected with a clean Status.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "io/sketch_snapshot.h"

namespace opthash::io {
namespace {

// A deterministic pseudo-Zipf key stream exercising repeats and tail keys.
std::vector<uint64_t> TestStream(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto r = static_cast<uint64_t>(rng.NextUint64());
    keys.push_back(r % ((r % 7 == 0) ? 10000 : 40));
  }
  return keys;
}

// Returns the Result wrapper (not the value) so gcc 12's spurious
// -Wfree-nonheap-object on moving map-backed sketches out of the variant
// never triggers; callers unwrap with .value().
template <typename Sketch>
Result<Sketch> RoundTrip(const Sketch& sketch) {
  ByteWriter out;
  sketch.Serialize(out);
  ByteReader in(out.bytes().data(), out.size());
  auto restored = Sketch::Deserialize(in);
  EXPECT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(in.ExpectFullyConsumed().ok());
  return restored;
}

TEST(SketchSnapshotTest, CountMinRoundTrip) {
  sketch::CountMinSketch sketch(128, 4, 17);
  sketch.UpdateBatch(TestStream(5000, 1));
  auto restored_or = RoundTrip(sketch);
  const auto& restored = restored_or.value();
  EXPECT_EQ(restored.total_count(), sketch.total_count());
  EXPECT_EQ(restored.width(), sketch.width());
  EXPECT_EQ(restored.depth(), sketch.depth());
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(restored.Estimate(key), sketch.Estimate(key)) << key;
  }
}

TEST(SketchSnapshotTest, ConservativeCountMinRoundTripKeepsFlag) {
  sketch::CountMinSketch sketch(64, 3, 5, /*conservative_update=*/true);
  sketch.UpdateBatch(TestStream(2000, 2));
  auto restored_or = RoundTrip(sketch);
  auto& restored = restored_or.value();
  EXPECT_TRUE(restored.conservative_update());
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(restored.Estimate(key), sketch.Estimate(key));
  }
  // Resumed ingestion must stay conservative: both paths agree afterwards.
  const auto more = TestStream(500, 3);
  sketch.UpdateBatch(more);
  restored.UpdateBatch(more);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(restored.Estimate(key), sketch.Estimate(key));
  }
}

TEST(SketchSnapshotTest, CountSketchRoundTrip) {
  sketch::CountSketch sketch(128, 5, 23);
  sketch.UpdateBatch(TestStream(5000, 4));
  auto restored_or = RoundTrip(sketch);
  const auto& restored = restored_or.value();
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(restored.Estimate(key), sketch.Estimate(key)) << key;
  }
}

TEST(SketchSnapshotTest, AmsRoundTrip) {
  sketch::AmsSketch sketch(7, 11, 31);
  sketch.UpdateBatch(TestStream(5000, 5));
  auto restored_or = RoundTrip(sketch);
  const auto& restored = restored_or.value();
  EXPECT_DOUBLE_EQ(restored.EstimateF2(), sketch.EstimateF2());
  EXPECT_EQ(restored.groups(), sketch.groups());
  EXPECT_EQ(restored.estimators_per_group(),
            sketch.estimators_per_group());
}

TEST(SketchSnapshotTest, LearnedCountMinRoundTrip) {
  auto sketch = sketch::LearnedCountMinSketch::Create(
      512, 4, {0, 1, 2, 3, 17}, 9);
  ASSERT_TRUE(sketch.ok());
  sketch.value().UpdateBatch(TestStream(5000, 6));
  auto restored_or = RoundTrip(sketch.value());
  const auto& restored = restored_or.value();
  EXPECT_EQ(restored.heavy_bucket_count(),
            sketch.value().heavy_bucket_count());
  EXPECT_EQ(restored.TotalBuckets(), sketch.value().TotalBuckets());
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(restored.Estimate(key), sketch.value().Estimate(key)) << key;
  }
}

TEST(SketchSnapshotTest, MisraGriesRoundTrip) {
  sketch::MisraGries sketch(24);
  sketch.UpdateBatch(TestStream(5000, 7));
  auto restored_or = RoundTrip(sketch);
  const auto& restored = restored_or.value();
  EXPECT_EQ(restored.size(), sketch.size());
  EXPECT_EQ(restored.total_count(), sketch.total_count());
  EXPECT_DOUBLE_EQ(restored.ErrorBound(), sketch.ErrorBound());
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(restored.Estimate(key), sketch.Estimate(key)) << key;
    EXPECT_EQ(restored.IsTracked(key), sketch.IsTracked(key)) << key;
  }
  EXPECT_EQ(restored.HeavyEntries(), sketch.HeavyEntries());
}

TEST(SketchSnapshotTest, SpaceSavingRoundTrip) {
  sketch::SpaceSaving sketch(24);
  sketch.UpdateBatch(TestStream(5000, 8));
  auto restored_or = RoundTrip(sketch);
  auto& restored = restored_or.value();
  EXPECT_EQ(restored.size(), sketch.size());
  EXPECT_EQ(restored.total_count(), sketch.total_count());
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(restored.Estimate(key), sketch.Estimate(key)) << key;
    EXPECT_EQ(restored.ErrorOf(key), sketch.ErrorOf(key)) << key;
  }
  EXPECT_EQ(restored.GuaranteedHeavy(10), sketch.GuaranteedHeavy(10));
  // The rebuilt eviction index must keep min-eviction working: resumed
  // ingestion stays identical to the never-checkpointed sketch.
  const auto more = TestStream(1000, 9);
  auto original = sketch;  // Copy before diverging.
  original.UpdateBatch(more);
  restored.UpdateBatch(more);
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(restored.Estimate(key), original.Estimate(key)) << key;
  }
}

TEST(SketchSnapshotTest, CheckpointResumeMatchesUnbrokenIngestion) {
  // The snapshot/restore CLI contract: ingest half, checkpoint, restore,
  // ingest the rest — indistinguishable from one uninterrupted pass.
  const auto first = TestStream(3000, 10);
  const auto second = TestStream(3000, 11);
  sketch::CountMinSketch unbroken(256, 4, 42);
  unbroken.UpdateBatch(first);
  unbroken.UpdateBatch(second);

  sketch::CountMinSketch before(256, 4, 42);
  before.UpdateBatch(first);
  const std::string path =
      ::testing::TempDir() + "/sketch_snapshot_resume.bin";
  ASSERT_TRUE(SaveSketchSnapshot(path, before).ok());
  auto resumed = LoadSketchSnapshot<sketch::CountMinSketch>(path);
  ASSERT_TRUE(resumed.ok());
  resumed.value().UpdateBatch(second);
  for (uint64_t key = 0; key < 300; ++key) {
    EXPECT_EQ(resumed.value().Estimate(key), unbroken.Estimate(key)) << key;
  }
}

TEST(SketchSnapshotTest, LoadRejectsWrongSketchKind) {
  sketch::MisraGries sketch(8);
  sketch.Update(1, 5);
  const std::string path = ::testing::TempDir() + "/sketch_snapshot_mg.bin";
  ASSERT_TRUE(SaveSketchSnapshot(path, sketch).ok());
  EXPECT_FALSE(LoadSketchSnapshot<sketch::CountMinSketch>(path).ok());
  EXPECT_TRUE(LoadSketchSnapshot<sketch::MisraGries>(path).ok());
  auto sections = ListSnapshotSections(path);
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ(sections.value().size(), 1u);
  EXPECT_EQ(sections.value().front(), SectionType::kMisraGries);
}

TEST(SketchSnapshotTest, CorruptPayloadsRejectedNotCrashing) {
  // Payload-level fuzzing below the container (whose CRC would catch
  // these first): feed each Deserialize truncations and field mutations.
  sketch::CountMinSketch cms(16, 2, 3);
  cms.Update(5, 4);
  ByteWriter out;
  cms.Serialize(out);
  const std::vector<uint8_t>& bytes = out.bytes();
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    ByteReader in(bytes.data(), cut);
    EXPECT_FALSE(sketch::CountMinSketch::Deserialize(in).ok()) << cut;
  }
  {
    std::vector<uint8_t> wrong_version(bytes);
    wrong_version[0] = 9;
    ByteReader in(wrong_version.data(), wrong_version.size());
    EXPECT_FALSE(sketch::CountMinSketch::Deserialize(in).ok());
  }
  {
    std::vector<uint8_t> huge_width(bytes);
    huge_width[8] = 0xFF;
    huge_width[14] = 0xFF;  // width ~ 2^55: cannot fit the payload.
    ByteReader in(huge_width.data(), huge_width.size());
    EXPECT_FALSE(sketch::CountMinSketch::Deserialize(in).ok());
  }
}

TEST(SketchSnapshotTest, MisraGriesRejectsOverCapacityAndUnsortedKeys) {
  sketch::MisraGries sketch(4);
  for (uint64_t key : {1, 2, 3, 4}) sketch.Update(key, key + 1);
  ByteWriter out;
  sketch.Serialize(out);
  {
    std::vector<uint8_t> bad(out.bytes());
    bad[8] = 2;  // Claim capacity 2 < size 4.
    ByteReader in(bad.data(), bad.size());
    EXPECT_FALSE(sketch::MisraGries::Deserialize(in).ok());
  }
  {
    std::vector<uint8_t> bad(out.bytes());
    bad[32] = 9;  // First key 1 -> 9: keys no longer ascending.
    ByteReader in(bad.data(), bad.size());
    EXPECT_FALSE(sketch::MisraGries::Deserialize(in).ok());
  }
}

TEST(MappedCountMinViewTest, QueriesWithoutFullDeserialization) {
  sketch::CountMinSketch sketch(512, 4, 99);
  sketch.UpdateBatch(TestStream(20000, 12));
  const std::string path = ::testing::TempDir() + "/sketch_snapshot_map.bin";
  ASSERT_TRUE(SaveSketchSnapshot(path, sketch).ok());

  auto view = MappedCountMinView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().width(), sketch.width());
  EXPECT_EQ(view.value().depth(), sketch.depth());
  EXPECT_EQ(view.value().total_count(), sketch.total_count());
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(view.value().Estimate(key), sketch.Estimate(key)) << key;
  }
}

TEST(MappedCountMinViewTest, RejectsNonCountMinSnapshot) {
  sketch::SpaceSaving sketch(8);
  sketch.Update(1);
  const std::string path = ::testing::TempDir() + "/sketch_snapshot_ss.bin";
  ASSERT_TRUE(SaveSketchSnapshot(path, sketch).ok());
  EXPECT_FALSE(MappedCountMinView::Open(path).ok());
}

TEST(MappedCountMinViewTest, RejectsUnknownPayloadFlags) {
  sketch::CountMinSketch sketch(16, 2, 3);
  sketch.Update(1, 2);
  const std::string path =
      ::testing::TempDir() + "/sketch_snapshot_flags.bin";
  ASSERT_TRUE(SaveSketchSnapshot(path, sketch).ok());
  // Set an undefined flag bit inside the payload (payload starts at
  // 0x40; the flags field sits at +4 = byte 68). The lazy open skips
  // payload CRCs, so the flags check itself must reject — mirroring the
  // full loader.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(68);
    file.put('\x02');
  }
  auto view = MappedCountMinView::Open(path);
  ASSERT_FALSE(view.ok());
  EXPECT_NE(view.status().message().find("flags"), std::string::npos);
}

TEST(MappedCountMinViewTest, VerifyFlagCatchesCorruption) {
  sketch::CountMinSketch sketch(64, 2, 7);
  sketch.Update(3, 10);
  const std::string path =
      ::testing::TempDir() + "/sketch_snapshot_mapbad.bin";
  ASSERT_TRUE(SaveSketchSnapshot(path, sketch).ok());
  // Flip one counter byte on disk.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(-1, std::ios::end);
    file.put('\x7F');
  }
  EXPECT_FALSE(MappedCountMinView::Open(path, /*verify_crc=*/true).ok());
}

TEST(MmapServingSupportedTest, OnlyCountMinAndEstimatorHaveMappedViews) {
  // The CLI's `restore --mmap` fallback notice keys off this predicate;
  // a new mapped view must flip its section here (and drop the notice).
  EXPECT_TRUE(MmapServingSupported(SectionType::kCountMinSketch));
  EXPECT_TRUE(MmapServingSupported(SectionType::kOptHashEstimator));
  EXPECT_FALSE(MmapServingSupported(SectionType::kCountSketch));
  EXPECT_FALSE(MmapServingSupported(SectionType::kAmsSketch));
  EXPECT_FALSE(MmapServingSupported(SectionType::kLearnedCountMin));
  EXPECT_FALSE(MmapServingSupported(SectionType::kMisraGries));
  EXPECT_FALSE(MmapServingSupported(SectionType::kSpaceSaving));
}

}  // namespace
}  // namespace opthash::io

// EventLoop unit tests, below the daemon: a loop with a test handler on
// socketpair(2) ends, covering frame reassembly across arbitrary write
// boundaries, pipelined frames, close-on-handler-request, the oversized
// length-prefix error path, the write-backpressure cap, idle reaping and
// lifecycle accounting. The serving daemon's protocol behavior on top of
// the loop lives in server_test / server_fuzz_test / server_stress_test.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/event_loop.h"
#include "server/protocol.h"
#include "server/socket_io.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

#ifndef _WIN32

namespace opthash::server {
namespace {

// One connected (client_fd, server_fd) pair; the server end is what the
// loop adopts.
struct LocalPair {
  int client_fd = -1;
  int server_fd = -1;
};

LocalPair MustPair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {fds[0], fds[1]};
}

void SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

std::vector<uint8_t> Frame(const std::string& payload) {
  std::vector<uint8_t> frame(kFrameHeaderSize + payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::memcpy(frame.data(), &length, sizeof(length));
  std::memcpy(frame.data() + kFrameHeaderSize, payload.data(),
              payload.size());
  return frame;
}

// Echoes the payload back as one frame; "quit" also ends the session.
EventLoop::FrameHandler EchoHandler() {
  return [](EventLoop::SessionState&, Span<const uint8_t> payload,
            std::vector<uint8_t>& response) {
    const std::string text(reinterpret_cast<const char*>(payload.data()),
                           payload.size());
    const std::vector<uint8_t> frame = Frame(text);
    response.assign(frame.begin(), frame.end());
    return text != "quit";
  };
}

EventLoop::SessionFactory NullFactory() {
  return [] { return std::make_unique<EventLoop::SessionState>(); };
}

bool WaitFor(const std::function<bool()>& done, int deadline_millis) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_millis);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

EventLoopConfig FastConfig() {
  EventLoopConfig config;
  config.poll_millis = 10;
  return config;
}

TEST(EventLoopTest, ReassemblesFramesAcrossArbitraryWriteBoundaries) {
  EventLoop loop(FastConfig(), NullFactory(), EchoHandler());
  ASSERT_TRUE(loop.Start().ok());
  LocalPair pair = MustPair();
  SetRecvTimeout(pair.client_fd, 5000);
  ASSERT_TRUE(loop.Adopt(pair.server_fd).ok());

  // Byte-by-byte: the loop must buffer the partial frame across many
  // readiness events before it can answer.
  const std::vector<uint8_t> frame = Frame("dripfeed");
  for (uint8_t byte : frame) {
    ASSERT_TRUE(WriteAll(pair.client_fd, Span<const uint8_t>(&byte, 1)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFramePayload(pair.client_fd, payload).ok());
  EXPECT_EQ(std::string(payload.begin(), payload.end()), "dripfeed");

  // Pipelined: many frames in one write come back in order.
  std::vector<uint8_t> burst;
  for (int i = 0; i < 50; ++i) {
    const std::vector<uint8_t> one = Frame("msg" + std::to_string(i));
    burst.insert(burst.end(), one.begin(), one.end());
  }
  ASSERT_TRUE(
      WriteAll(pair.client_fd,
               Span<const uint8_t>(burst.data(), burst.size()))
          .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ReadFramePayload(pair.client_fd, payload).ok());
    EXPECT_EQ(std::string(payload.begin(), payload.end()),
              "msg" + std::to_string(i));
  }
  CloseSocket(pair.client_fd);
  loop.Stop();
}

TEST(EventLoopTest, HandlerReturningFalseClosesAfterTheReply) {
  EventLoop loop(FastConfig(), NullFactory(), EchoHandler());
  ASSERT_TRUE(loop.Start().ok());
  LocalPair pair = MustPair();
  SetRecvTimeout(pair.client_fd, 5000);
  ASSERT_TRUE(loop.Adopt(pair.server_fd).ok());

  const std::vector<uint8_t> quit = Frame("quit");
  ASSERT_TRUE(
      WriteAll(pair.client_fd, Span<const uint8_t>(quit.data(), quit.size()))
          .ok());
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFramePayload(pair.client_fd, payload).ok());
  EXPECT_EQ(std::string(payload.begin(), payload.end()), "quit");
  // The reply arrives first, the hangup second.
  EXPECT_EQ(ReadFramePayload(pair.client_fd, payload).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(WaitFor([&] { return loop.connections() == 0; }, 2000));
  CloseSocket(pair.client_fd);
  loop.Stop();
}

TEST(EventLoopTest, OversizedLengthPrefixAnswersErrorThenHangsUp) {
  EventLoop loop(FastConfig(), NullFactory(), EchoHandler());
  ASSERT_TRUE(loop.Start().ok());
  LocalPair pair = MustPair();
  SetRecvTimeout(pair.client_fd, 5000);
  ASSERT_TRUE(loop.Adopt(pair.server_fd).ok());

  const uint8_t huge_header[] = {0xFF, 0xFF, 0xFF, 0x7F, 1};
  ASSERT_TRUE(
      WriteAll(pair.client_fd, Span<const uint8_t>(huge_header, 5)).ok());
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFramePayload(pair.client_fd, payload).ok());
  Status remote;
  ASSERT_TRUE(DecodeErrorResponse(
                  Span<const uint8_t>(payload.data(), payload.size()), remote)
                  .ok());
  EXPECT_EQ(remote.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ReadFramePayload(pair.client_fd, payload).code(),
            StatusCode::kNotFound);
  CloseSocket(pair.client_fd);
  loop.Stop();
}

TEST(EventLoopTest, PeerClosingMidFrameGetsTruncationError) {
  EventLoop loop(FastConfig(), NullFactory(), EchoHandler());
  ASSERT_TRUE(loop.Start().ok());
  LocalPair pair = MustPair();
  SetRecvTimeout(pair.client_fd, 5000);
  ASSERT_TRUE(loop.Adopt(pair.server_fd).ok());

  // Header promises 100 bytes; send 7 and close our write side. The
  // half-closed socket can still read the error verdict.
  const uint8_t partial[] = {100, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_TRUE(
      WriteAll(pair.client_fd, Span<const uint8_t>(partial, 11)).ok());
  ::shutdown(pair.client_fd, SHUT_WR);
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFramePayload(pair.client_fd, payload).ok());
  Status remote;
  ASSERT_TRUE(DecodeErrorResponse(
                  Span<const uint8_t>(payload.data(), payload.size()), remote)
                  .ok());
  EXPECT_EQ(remote.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ReadFramePayload(pair.client_fd, payload).code(),
            StatusCode::kNotFound);
  CloseSocket(pair.client_fd);
  loop.Stop();
}

TEST(EventLoopTest, WriteBackpressureCapCutsTheSlowReaderLoose) {
  // An amplifying handler (tiny request, megabyte reply) with a reader
  // that never reads: pending replies blow past the cap in one parse
  // batch and the connection is closed, while a second, polite
  // connection on the same loop keeps getting answers.
  EventLoopConfig config = FastConfig();
  config.max_write_buffer = kMaxFramePayload + 64;  // The minimum cap.
  auto amplify = [](EventLoop::SessionState&, Span<const uint8_t>,
                    std::vector<uint8_t>& response) {
    const std::vector<uint8_t> frame =
        Frame(std::string(1u << 20, 'x'));
    response.assign(frame.begin(), frame.end());
    return true;
  };
  EventLoop loop(config, NullFactory(), amplify);
  ASSERT_TRUE(loop.Start().ok());

  LocalPair slow = MustPair();
  LocalPair polite = MustPair();
  SetRecvTimeout(polite.client_fd, 5000);
  ASSERT_TRUE(loop.Adopt(slow.server_fd).ok());
  ASSERT_TRUE(loop.Adopt(polite.server_fd).ok());

  // Ten tiny requests arrive in one chunk; ten 1 MiB replies exceed the
  // ~4 MiB cap before the slow reader has read a byte.
  std::vector<uint8_t> burst;
  for (int i = 0; i < 10; ++i) {
    const std::vector<uint8_t> one = Frame("go");
    burst.insert(burst.end(), one.begin(), one.end());
  }
  ASSERT_TRUE(WriteAll(slow.client_fd,
                       Span<const uint8_t>(burst.data(), burst.size()))
                  .ok());
  EXPECT_TRUE(WaitFor([&] { return loop.closed_backpressure() >= 1; }, 5000));
  EXPECT_TRUE(WaitFor([&] { return loop.connections() == 1; }, 2000));

  const std::vector<uint8_t> ping = Frame("hi");
  ASSERT_TRUE(WriteAll(polite.client_fd,
                       Span<const uint8_t>(ping.data(), ping.size()))
                  .ok());
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFramePayload(polite.client_fd, payload).ok());
  EXPECT_EQ(payload.size(), 1u << 20);

  CloseSocket(slow.client_fd);
  CloseSocket(polite.client_fd);
  loop.Stop();
}

TEST(EventLoopTest, IdleConnectionsReapedActiveOnesSurvive) {
  EventLoopConfig config = FastConfig();
  config.idle_timeout_seconds = 0.2;
  EventLoop loop(config, NullFactory(), EchoHandler());
  ASSERT_TRUE(loop.Start().ok());

  LocalPair idle = MustPair();
  LocalPair active = MustPair();
  SetRecvTimeout(idle.client_fd, 5000);
  SetRecvTimeout(active.client_fd, 5000);
  ASSERT_TRUE(loop.Adopt(idle.server_fd).ok());
  ASSERT_TRUE(loop.Adopt(active.server_fd).ok());

  // Keep one side chatty well past the timeout; the silent one must go.
  const std::vector<uint8_t> ping = Frame("tick");
  std::vector<uint8_t> payload;
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(WriteAll(active.client_fd,
                         Span<const uint8_t>(ping.data(), ping.size()))
                    .ok());
    ASSERT_TRUE(ReadFramePayload(active.client_fd, payload).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(loop.closed_idle(), 1u);
  EXPECT_EQ(loop.connections(), 1u);
  // The reaped end reads EOF.
  EXPECT_EQ(ReadFramePayload(idle.client_fd, payload).code(),
            StatusCode::kNotFound);

  CloseSocket(idle.client_fd);
  CloseSocket(active.client_fd);
  loop.Stop();
}

TEST(EventLoopTest, LifecycleAccountingAndAdoptAfterStop) {
  EventLoop loop(FastConfig(), NullFactory(), EchoHandler());
  ASSERT_TRUE(loop.Start().ok());
  LocalPair a = MustPair();
  LocalPair b = MustPair();
  ASSERT_TRUE(loop.Adopt(a.server_fd).ok());
  ASSERT_TRUE(loop.Adopt(b.server_fd).ok());
  EXPECT_EQ(loop.connections(), 2u);

  CloseSocket(a.client_fd);
  EXPECT_TRUE(WaitFor([&] { return loop.connections() == 1; }, 2000));
  loop.Stop();
  EXPECT_EQ(loop.connections(), 0u);

  LocalPair late = MustPair();
  const Status adopted = loop.Adopt(late.server_fd);
  ASSERT_FALSE(adopted.ok());
  EXPECT_EQ(adopted.code(), StatusCode::kFailedPrecondition);
  CloseSocket(late.server_fd);
  CloseSocket(late.client_fd);
  CloseSocket(b.client_fd);
}

TEST(EventLoopTest, ConfigValidationRejectsUnservableCaps) {
  EventLoopConfig config;
  config.max_write_buffer = 1024;  // Cannot hold even one full reply.
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = EventLoopConfig{};
  config.poll_millis = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = EventLoopConfig{};
  config.write_high_watermark = config.max_write_buffer + 1;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = EventLoopConfig{};
  config.idle_timeout_seconds = -1.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(EventLoopConfig{}.Validate().ok());
}

}  // namespace
}  // namespace opthash::server

#endif  // !_WIN32

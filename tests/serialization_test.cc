// Round-trip tests for the model / estimator serialization: a deserialized
// object must answer every query identically to the original, and corrupt
// blobs must be rejected with InvalidArgument rather than crashing.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/opt_hash_estimator.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"

namespace opthash {
namespace {

ml::Dataset Blobs(size_t n, size_t classes, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data(3);
  for (size_t i = 0; i < n; ++i) {
    const auto label = static_cast<int>(i % classes);
    data.Add({static_cast<double>(label) * 2.0 + rng.NextGaussian(),
              rng.NextGaussian(),
              static_cast<double>(label) - rng.NextGaussian() * 0.3},
             label);
  }
  return data;
}

TEST(SerializationTest, DecisionTreeRoundTrip) {
  const ml::Dataset data = Blobs(200, 4, 1);
  ml::DecisionTree tree;
  tree.Fit(data);
  auto restored = ml::DecisionTree::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().NodeCount(), tree.NodeCount());
  for (size_t i = 0; i < data.NumExamples(); ++i) {
    EXPECT_EQ(restored.value().Predict(data.Features(i)),
              tree.Predict(data.Features(i)));
  }
}

TEST(SerializationTest, DecisionTreeImportancesSurvive) {
  const ml::Dataset data = Blobs(150, 3, 2);
  ml::DecisionTree tree;
  tree.Fit(data);
  auto restored = ml::DecisionTree::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok());
  const auto a = tree.FeatureImportances();
  const auto b = restored.value().FeatureImportances();
  ASSERT_EQ(a.size(), b.size());
  for (size_t f = 0; f < a.size(); ++f) EXPECT_NEAR(a[f], b[f], 1e-12);
}

TEST(SerializationTest, RandomForestRoundTrip) {
  const ml::Dataset data = Blobs(150, 3, 3);
  ml::RandomForestConfig config;
  config.num_trees = 7;
  ml::RandomForest forest(config);
  forest.Fit(data);
  auto restored = ml::RandomForest::Deserialize(forest.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().NumTrees(), 7u);
  for (size_t i = 0; i < data.NumExamples(); ++i) {
    EXPECT_EQ(restored.value().Predict(data.Features(i)),
              forest.Predict(data.Features(i)));
  }
}

TEST(SerializationTest, LogisticRegressionRoundTrip) {
  const ml::Dataset data = Blobs(150, 3, 4);
  ml::LogisticRegression model;
  model.Fit(data);
  auto restored = ml::LogisticRegression::Deserialize(model.Serialize());
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < data.NumExamples(); ++i) {
    const auto a = model.PredictProba(data.Features(i));
    const auto b = restored.value().PredictProba(data.Features(i));
    for (size_t c = 0; c < a.size(); ++c) EXPECT_NEAR(a[c], b[c], 1e-12);
  }
}

TEST(SerializationTest, RejectsCorruptBlobs) {
  EXPECT_FALSE(ml::DecisionTree::Deserialize("").ok());
  EXPECT_FALSE(ml::DecisionTree::Deserialize("garbage 1 2 3").ok());
  EXPECT_FALSE(ml::DecisionTree::Deserialize("opthash.cart.v1 2 2 1").ok());
  EXPECT_FALSE(ml::RandomForest::Deserialize("opthash.rf.v1 2 2 1").ok());
  EXPECT_FALSE(
      ml::LogisticRegression::Deserialize("opthash.logreg.v1 2 3 0.5").ok());
  EXPECT_FALSE(core::OptHashEstimator::Deserialize("nope").ok());
}

TEST(SerializationTest, RejectsOutOfRangeNodes) {
  // A tree whose internal node points past the node array.
  const std::string bad =
      "opthash.cart.v1 2 2 1\n0 0 0.5 7 8 0 0.1 10\n";
  EXPECT_FALSE(ml::DecisionTree::Deserialize(bad).ok());
}

std::vector<core::PrefixElement> EstimatorPrefix(uint64_t seed) {
  Rng rng(seed);
  std::vector<core::PrefixElement> prefix;
  for (uint64_t i = 0; i < 12; ++i) {
    prefix.push_back({.id = 100 + i,
                      .frequency = 50.0 + static_cast<double>(i),
                      .features = {2.0 + 0.1 * rng.NextGaussian()}});
  }
  for (uint64_t i = 0; i < 12; ++i) {
    prefix.push_back({.id = 200 + i,
                      .frequency = 3.0,
                      .features = {-2.0 + 0.1 * rng.NextGaussian()}});
  }
  return prefix;
}

class EstimatorSerializationSweep
    : public ::testing::TestWithParam<core::ClassifierKind> {};

TEST_P(EstimatorSerializationSweep, RoundTripPreservesEstimates) {
  core::OptHashConfig config;
  config.total_buckets = 40;
  config.id_ratio = 0.5;
  config.solver = core::SolverKind::kDp;
  config.classifier = GetParam();
  auto trained = core::OptHashEstimator::Train(config, EstimatorPrefix(5));
  ASSERT_TRUE(trained.ok());
  const core::OptHashEstimator& original = trained.value();

  auto restored = core::OptHashEstimator::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().num_buckets(), original.num_buckets());
  EXPECT_EQ(restored.value().num_stored_ids(), original.num_stored_ids());
  EXPECT_EQ(restored.value().MemoryBuckets(), original.MemoryBuckets());

  // Stored elements.
  for (uint64_t id : {100u, 105u, 200u, 211u}) {
    const stream::StreamItem item{id, nullptr};
    EXPECT_DOUBLE_EQ(restored.value().Estimate(item), original.Estimate(item));
  }
  // Unseen elements through the classifier.
  const std::vector<double> heavy_features = {2.0};
  const std::vector<double> light_features = {-2.0};
  for (const auto* features : {&heavy_features, &light_features}) {
    const stream::StreamItem item{31337, features};
    EXPECT_DOUBLE_EQ(restored.value().Estimate(item), original.Estimate(item));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Classifiers, EstimatorSerializationSweep,
    ::testing::Values(core::ClassifierKind::kNone,
                      core::ClassifierKind::kLogisticRegression,
                      core::ClassifierKind::kCart,
                      core::ClassifierKind::kRandomForest));

TEST(SerializationTest, DeserializedEstimatorKeepsCounting) {
  core::OptHashConfig config;
  config.total_buckets = 40;
  config.id_ratio = 0.5;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kCart;
  auto trained = core::OptHashEstimator::Train(config, EstimatorPrefix(6));
  ASSERT_TRUE(trained.ok());
  auto restored =
      core::OptHashEstimator::Deserialize(trained.value().Serialize());
  ASSERT_TRUE(restored.ok());
  core::OptHashEstimator& live = restored.value();
  const stream::StreamItem item{100, nullptr};
  const double before = live.Estimate(item);
  const auto bucket = static_cast<size_t>(live.BucketOf(item));
  for (int rep = 0; rep < 10; ++rep) live.Update(item);
  EXPECT_NEAR(live.Estimate(item),
              before + 10.0 / live.BucketCount(bucket), 1e-9);
}

TEST(SerializationTest, SerializeIsDeterministic) {
  core::OptHashConfig config;
  config.total_buckets = 30;
  config.id_ratio = 0.5;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kCart;
  auto a = core::OptHashEstimator::Train(config, EstimatorPrefix(7));
  auto b = core::OptHashEstimator::Train(config, EstimatorPrefix(7));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().Serialize(), b.value().Serialize());
}

}  // namespace
}  // namespace opthash

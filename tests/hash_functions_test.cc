#include "hashing/hash_functions.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace opthash::hashing {
namespace {

TEST(Mix64Test, DeterministicAndInjectiveOnSample) {
  std::set<uint64_t> outputs;
  for (uint64_t key = 0; key < 10000; ++key) {
    outputs.insert(Mix64(key));
  }
  EXPECT_EQ(outputs.size(), 10000u);  // Mix64 is a bijection.
  EXPECT_EQ(Mix64(42), Mix64(42));
}

TEST(Mix64Test, AvalancheFlipsRoughlyHalfTheBits) {
  size_t total_flips = 0;
  constexpr int kTrials = 1000;
  for (uint64_t key = 0; key < kTrials; ++key) {
    const uint64_t base = Mix64(key);
    const uint64_t flipped = Mix64(key ^ 1);
    total_flips += static_cast<size_t>(__builtin_popcountll(base ^ flipped));
  }
  const double mean_flips = static_cast<double>(total_flips) / kTrials;
  EXPECT_NEAR(mean_flips, 32.0, 2.0);
}

TEST(HashBytesTest, DependsOnContentAndSeed) {
  const std::string a = "google";
  const std::string b = "googlf";
  EXPECT_NE(HashString(a), HashString(b));
  EXPECT_NE(HashString(a, 1), HashString(a, 2));
  EXPECT_EQ(HashString(a), HashString(a));
}

TEST(HashBytesTest, EmptyInputIsValid) {
  EXPECT_EQ(HashBytes(nullptr, 0), HashBytes(nullptr, 0));
  EXPECT_NE(HashBytes(nullptr, 0, 1), HashBytes(nullptr, 0, 2));
}

TEST(LinearHashTest, StaysInRange) {
  Rng rng(3);
  LinearHash hash(97, rng);
  for (uint64_t key = 0; key < 50000; ++key) {
    EXPECT_LT(hash(key), 97u);
  }
}

TEST(LinearHashTest, DeterministicFromCoefficients) {
  LinearHash h1(10, 12345, 678);
  LinearHash h2(10, 12345, 678);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(h1(key), h2(key));
  }
}

TEST(LinearHashTest, DistributesUniformly) {
  Rng rng(4);
  constexpr size_t kRange = 16;
  LinearHash hash(kRange, rng);
  std::vector<size_t> counts(kRange, 0);
  constexpr size_t kKeys = 160000;
  for (uint64_t key = 0; key < kKeys; ++key) ++counts[hash(key)];
  const double expected = static_cast<double>(kKeys) / kRange;
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 6 * std::sqrt(expected));
  }
}

TEST(LinearHashTest, PairwiseCollisionRateNearUniform) {
  // 2-universality: Pr[h(x) = h(y)] <= 1/range for x != y. Estimate the
  // collision rate over random pairs and many independent hash draws.
  Rng rng(5);
  constexpr uint64_t kRange = 32;
  size_t collisions = 0;
  constexpr int kTrials = 60000;
  for (int t = 0; t < kTrials; ++t) {
    LinearHash hash(kRange, rng);
    const uint64_t x = rng.NextUint64();
    uint64_t y = rng.NextUint64();
    if (x == y) ++y;
    if (hash(x) == hash(y)) ++collisions;
  }
  const double rate = static_cast<double>(collisions) / kTrials;
  EXPECT_LT(rate, 1.3 / kRange);
  EXPECT_GT(rate, 0.7 / kRange);
}

TEST(SignHashTest, ReturnsOnlyPlusMinusOne) {
  Rng rng(6);
  SignHash sign(rng);
  for (uint64_t key = 0; key < 10000; ++key) {
    const int s = sign(key);
    EXPECT_TRUE(s == 1 || s == -1);
  }
}

TEST(SignHashTest, RoughlyBalanced) {
  Rng rng(7);
  SignHash sign(rng);
  int total = 0;
  constexpr int kKeys = 100000;
  for (uint64_t key = 0; key < kKeys; ++key) total += sign(key);
  EXPECT_LT(std::abs(total), 3000);
}

TEST(TabulationHashTest, DeterministicPerInstance) {
  Rng rng(8);
  TabulationHash hash(rng);
  EXPECT_EQ(hash(123456789), hash(123456789));
}

TEST(TabulationHashTest, DistributesLowBits) {
  Rng rng(9);
  TabulationHash hash(rng);
  std::vector<size_t> counts(8, 0);
  constexpr size_t kKeys = 80000;
  for (uint64_t key = 0; key < kKeys; ++key) ++counts[hash(key) & 7];
  const double expected = static_cast<double>(kKeys) / 8;
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 6 * std::sqrt(expected));
  }
}

class LinearHashRangeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinearHashRangeSweep, NeverExceedsRange) {
  Rng rng(GetParam());
  LinearHash hash(GetParam(), rng);
  for (uint64_t key = 0; key < 5000; ++key) {
    EXPECT_LT(hash(key * 0x9E3779B97F4A7C15ULL), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, LinearHashRangeSweep,
                         ::testing::Values(1, 2, 3, 10, 64, 1000, 1 << 20));

}  // namespace
}  // namespace opthash::hashing

// Wire-protocol round-trips and hostile-input rejection: every frame
// kind encodes/decodes losslessly, and truncated, oversized, garbage or
// type-confused payloads come back as a clean Status — never a crash.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "server/protocol.h"

namespace opthash::server {
namespace {

Span<const uint8_t> PayloadOf(const std::vector<uint8_t>& frame) {
  // Strip the length prefix: decoders consume payloads, not frames.
  return Span<const uint8_t>(frame.data() + kFrameHeaderSize,
                             frame.size() - kFrameHeaderSize);
}

uint32_t LengthPrefixOf(const std::vector<uint8_t>& frame) {
  return static_cast<uint32_t>(frame[0]) |
         (static_cast<uint32_t>(frame[1]) << 8) |
         (static_cast<uint32_t>(frame[2]) << 16) |
         (static_cast<uint32_t>(frame[3]) << 24);
}

TEST(ServerProtocolTest, KeyRequestRoundTripsBothTypes) {
  const std::vector<uint64_t> keys = {0, 1, 42, ~uint64_t{0}, 1ull << 63};
  for (const MessageType type :
       {MessageType::kQuery, MessageType::kIngest}) {
    std::vector<uint8_t> frame;
    EncodeKeyRequest(type, keys, frame);
    EXPECT_EQ(LengthPrefixOf(frame), frame.size() - kFrameHeaderSize);
    std::vector<uint64_t> decoded;
    ASSERT_TRUE(DecodeKeyRequest(PayloadOf(frame), type, decoded).ok());
    EXPECT_EQ(decoded, keys);
  }
}

TEST(ServerProtocolTest, EmptyKeyRequestRoundTrips) {
  std::vector<uint8_t> frame;
  EncodeKeyRequest(MessageType::kQuery, {}, frame);
  std::vector<uint64_t> decoded = {99};
  ASSERT_TRUE(
      DecodeKeyRequest(PayloadOf(frame), MessageType::kQuery, decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(ServerProtocolTest, EstimatesResponseRoundTrips) {
  const std::vector<double> estimates = {0.0, 1.5, -3.25, 1e300};
  std::vector<uint8_t> frame;
  EncodeEstimatesResponse(estimates, frame);
  std::vector<double> decoded;
  ASSERT_TRUE(DecodeEstimatesResponse(PayloadOf(frame), decoded).ok());
  EXPECT_EQ(decoded, estimates);  // Bit-exact through the u64 pattern.
}

TEST(ServerProtocolTest, AckAndPongAndEmptyRequestsRoundTrip) {
  std::vector<uint8_t> frame;
  EncodeAckResponse(77, frame);
  auto ack = DecodeAckResponse(PayloadOf(frame));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value(), 77u);

  for (const MessageType type :
       {MessageType::kStats, MessageType::kPing, MessageType::kSnapshot,
        MessageType::kShutdown, MessageType::kPong}) {
    EncodeEmptyMessage(type, frame);
    EXPECT_TRUE(DecodeEmptyMessage(PayloadOf(frame), type).ok());
  }
}

TEST(ServerProtocolTest, StatsResponseRoundTripsEveryField) {
  ServerStatsSnapshot stats;
  stats.items_ingested = 1;
  stats.queries_served = 2;
  stats.query_requests = 3;
  stats.ingest_requests = 4;
  stats.sessions_accepted = 5;
  stats.snapshots_written = 6;
  stats.model_total_items = 7;
  stats.uptime_seconds = 8.5;
  stats.query_p50_micros = 9.25;
  stats.query_p99_micros = 10.125;
  stats.snapshot_age_seconds = -1.0;
  std::vector<uint8_t> frame;
  EncodeStatsResponse(stats, frame);
  auto decoded = DecodeStatsResponse(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().items_ingested, 1u);
  EXPECT_EQ(decoded.value().queries_served, 2u);
  EXPECT_EQ(decoded.value().query_requests, 3u);
  EXPECT_EQ(decoded.value().ingest_requests, 4u);
  EXPECT_EQ(decoded.value().sessions_accepted, 5u);
  EXPECT_EQ(decoded.value().snapshots_written, 6u);
  EXPECT_EQ(decoded.value().model_total_items, 7u);
  EXPECT_DOUBLE_EQ(decoded.value().uptime_seconds, 8.5);
  EXPECT_DOUBLE_EQ(decoded.value().query_p50_micros, 9.25);
  EXPECT_DOUBLE_EQ(decoded.value().query_p99_micros, 10.125);
  EXPECT_DOUBLE_EQ(decoded.value().snapshot_age_seconds, -1.0);
}

TEST(ServerProtocolTest, ErrorResponseRoundTripsCodeAndMessage) {
  std::vector<uint8_t> frame;
  EncodeErrorResponse(Status::FailedPrecondition("read-only model"), frame);
  Status remote;
  ASSERT_TRUE(DecodeErrorResponse(PayloadOf(frame), remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(remote.message(), "read-only model");
}

TEST(ServerProtocolTest, UnknownWireCodeDecodesAsInternal) {
  // A newer server may send codes this client does not know; they must
  // still surface as errors.
  std::vector<uint8_t> frame;
  EncodeErrorResponse(Status::Internal("future"), frame);
  std::vector<uint8_t> payload(PayloadOf(frame).begin(),
                               PayloadOf(frame).end());
  payload[1] = 200;  // Unassigned wire code.
  Status remote;
  ASSERT_TRUE(
      DecodeErrorResponse(Span<const uint8_t>(payload.data(), payload.size()),
                          remote)
          .ok());
  EXPECT_EQ(remote.code(), StatusCode::kInternal);
}

TEST(ServerProtocolTest, EmptyPayloadRejected) {
  EXPECT_FALSE(PeekMessageType(Span<const uint8_t>(nullptr, 0)).ok());
}

TEST(ServerProtocolTest, GarbageTypeByteRejected) {
  const uint8_t garbage[] = {73, 0, 0};
  EXPECT_FALSE(PeekMessageType(Span<const uint8_t>(garbage, 3)).ok());
}

TEST(ServerProtocolTest, TruncatedKeyRequestRejected) {
  std::vector<uint8_t> frame;
  const std::vector<uint64_t> keys = {1, 2, 3};
  EncodeKeyRequest(MessageType::kQuery, keys, frame);
  std::vector<uint64_t> decoded;
  // Chop bytes off the tail: every prefix must fail cleanly.
  for (size_t keep = 0; keep + kFrameHeaderSize < frame.size(); ++keep) {
    const Status status = DecodeKeyRequest(
        Span<const uint8_t>(frame.data() + kFrameHeaderSize, keep),
        MessageType::kQuery, decoded);
    EXPECT_FALSE(status.ok()) << "prefix of " << keep << " bytes decoded";
  }
}

TEST(ServerProtocolTest, OversizedCountRejected) {
  // Declared count larger than the body actually carries.
  std::vector<uint8_t> frame;
  const std::vector<uint64_t> keys = {1, 2};
  EncodeKeyRequest(MessageType::kQuery, keys, frame);
  frame[kFrameHeaderSize + 1] = 200;  // count LSB: claims 200 keys.
  std::vector<uint64_t> decoded;
  EXPECT_FALSE(
      DecodeKeyRequest(PayloadOf(frame), MessageType::kQuery, decoded).ok());
}

TEST(ServerProtocolTest, TrailingBytesOnEmptyRequestRejected) {
  std::vector<uint8_t> frame;
  EncodeEmptyMessage(MessageType::kPing, frame);
  frame.push_back(0);  // Unexpected body byte.
  EXPECT_FALSE(
      DecodeEmptyMessage(Span<const uint8_t>(frame.data() + kFrameHeaderSize,
                                             frame.size() - kFrameHeaderSize),
                         MessageType::kPing)
          .ok());
}

TEST(ServerProtocolTest, TypeConfusionRejected) {
  std::vector<uint8_t> frame;
  const std::vector<uint64_t> keys = {1};
  EncodeKeyRequest(MessageType::kQuery, keys, frame);
  std::vector<uint64_t> decoded;
  EXPECT_FALSE(
      DecodeKeyRequest(PayloadOf(frame), MessageType::kIngest, decoded).ok());
  EXPECT_FALSE(DecodeEmptyMessage(PayloadOf(frame), MessageType::kPing).ok());
  EXPECT_FALSE(DecodeAckResponse(PayloadOf(frame)).ok());
  std::vector<double> estimates;
  EXPECT_FALSE(DecodeEstimatesResponse(PayloadOf(frame), estimates).ok());
  auto stats = DecodeStatsResponse(PayloadOf(frame));
  EXPECT_FALSE(stats.ok());
}

TEST(ServerProtocolTest, ErrorMessageClampedToFrameLimit) {
  // A pathologically long message must not breach kMaxFramePayload.
  const std::string huge(kMaxFramePayload + 1000, 'x');
  std::vector<uint8_t> frame;
  EncodeErrorResponse(Status::Internal(huge), frame);
  EXPECT_LE(frame.size() - kFrameHeaderSize, kMaxFramePayload);
  Status remote;
  ASSERT_TRUE(DecodeErrorResponse(PayloadOf(frame), remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace opthash::server

// Wire-protocol round-trips and hostile-input rejection: every frame
// kind encodes/decodes losslessly, and truncated, oversized, garbage or
// type-confused payloads come back as a clean Status — never a crash.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "server/protocol.h"

namespace opthash::server {
namespace {

Span<const uint8_t> PayloadOf(const std::vector<uint8_t>& frame) {
  // Strip the length prefix: decoders consume payloads, not frames.
  return Span<const uint8_t>(frame.data() + kFrameHeaderSize,
                             frame.size() - kFrameHeaderSize);
}

uint32_t LengthPrefixOf(const std::vector<uint8_t>& frame) {
  return static_cast<uint32_t>(frame[0]) |
         (static_cast<uint32_t>(frame[1]) << 8) |
         (static_cast<uint32_t>(frame[2]) << 16) |
         (static_cast<uint32_t>(frame[3]) << 24);
}

TEST(ServerProtocolTest, KeyRequestRoundTripsBothTypes) {
  const std::vector<uint64_t> keys = {0, 1, 42, ~uint64_t{0}, 1ull << 63};
  for (const MessageType type :
       {MessageType::kQuery, MessageType::kIngest}) {
    std::vector<uint8_t> frame;
    EncodeKeyRequest(type, keys, frame);
    EXPECT_EQ(LengthPrefixOf(frame), frame.size() - kFrameHeaderSize);
    std::vector<uint64_t> decoded;
    ASSERT_TRUE(DecodeKeyRequest(PayloadOf(frame), type, decoded).ok());
    EXPECT_EQ(decoded, keys);
  }
}

TEST(ServerProtocolTest, EmptyKeyRequestRoundTrips) {
  std::vector<uint8_t> frame;
  EncodeKeyRequest(MessageType::kQuery, {}, frame);
  std::vector<uint64_t> decoded = {99};
  ASSERT_TRUE(
      DecodeKeyRequest(PayloadOf(frame), MessageType::kQuery, decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(ServerProtocolTest, EstimatesResponseRoundTrips) {
  const std::vector<double> estimates = {0.0, 1.5, -3.25, 1e300};
  std::vector<uint8_t> frame;
  EncodeEstimatesResponse(estimates, frame);
  std::vector<double> decoded;
  ASSERT_TRUE(DecodeEstimatesResponse(PayloadOf(frame), decoded).ok());
  EXPECT_EQ(decoded, estimates);  // Bit-exact through the u64 pattern.
}

TEST(ServerProtocolTest, AckAndPongAndEmptyRequestsRoundTrip) {
  std::vector<uint8_t> frame;
  EncodeAckResponse(77, frame);
  auto ack = DecodeAckResponse(PayloadOf(frame));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value(), 77u);

  for (const MessageType type :
       {MessageType::kStats, MessageType::kPing, MessageType::kSnapshot,
        MessageType::kShutdown, MessageType::kPong}) {
    EncodeEmptyMessage(type, frame);
    EXPECT_TRUE(DecodeEmptyMessage(PayloadOf(frame), type).ok());
  }
}

TEST(ServerProtocolTest, StatsResponseRoundTripsEveryField) {
  ServerStatsSnapshot stats;
  stats.items_ingested = 1;
  stats.queries_served = 2;
  stats.query_requests = 3;
  stats.ingest_requests = 4;
  stats.sessions_accepted = 5;
  stats.snapshots_written = 6;
  stats.model_total_items = 7;
  stats.uptime_seconds = 8.5;
  stats.query_p50_micros = 9.25;
  stats.query_p99_micros = 10.125;
  stats.snapshot_age_seconds = -1.0;
  std::vector<uint8_t> frame;
  EncodeStatsResponse(stats, frame);
  EXPECT_EQ(frame[kFrameHeaderSize],
            static_cast<uint8_t>(MessageType::kStatsReply));
  auto decoded = DecodeStatsResponse(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().items_ingested, 1u);
  EXPECT_EQ(decoded.value().queries_served, 2u);
  EXPECT_EQ(decoded.value().query_requests, 3u);
  EXPECT_EQ(decoded.value().ingest_requests, 4u);
  EXPECT_EQ(decoded.value().sessions_accepted, 5u);
  EXPECT_EQ(decoded.value().snapshots_written, 6u);
  EXPECT_EQ(decoded.value().model_total_items, 7u);
  EXPECT_DOUBLE_EQ(decoded.value().uptime_seconds, 8.5);
  EXPECT_DOUBLE_EQ(decoded.value().query_p50_micros, 9.25);
  EXPECT_DOUBLE_EQ(decoded.value().query_p99_micros, 10.125);
  EXPECT_DOUBLE_EQ(decoded.value().snapshot_age_seconds, -1.0);
}

TEST(ServerProtocolTest, ErrorResponseRoundTripsCodeAndMessage) {
  std::vector<uint8_t> frame;
  EncodeErrorResponse(Status::FailedPrecondition("read-only model"), frame);
  Status remote;
  ASSERT_TRUE(DecodeErrorResponse(PayloadOf(frame), remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(remote.message(), "read-only model");
}

TEST(ServerProtocolTest, UnknownWireCodeDecodesAsInternal) {
  // A newer server may send codes this client does not know; they must
  // still surface as errors.
  std::vector<uint8_t> frame;
  EncodeErrorResponse(Status::Internal("future"), frame);
  std::vector<uint8_t> payload(PayloadOf(frame).begin(),
                               PayloadOf(frame).end());
  payload[1] = 200;  // Unassigned wire code.
  Status remote;
  ASSERT_TRUE(
      DecodeErrorResponse(Span<const uint8_t>(payload.data(), payload.size()),
                          remote)
          .ok());
  EXPECT_EQ(remote.code(), StatusCode::kInternal);
}

TEST(ServerProtocolTest, EmptyPayloadRejected) {
  EXPECT_FALSE(PeekMessageType(Span<const uint8_t>(nullptr, 0)).ok());
}

TEST(ServerProtocolTest, GarbageTypeByteRejected) {
  const uint8_t garbage[] = {73, 0, 0};
  EXPECT_FALSE(PeekMessageType(Span<const uint8_t>(garbage, 3)).ok());
}

TEST(ServerProtocolTest, TruncatedKeyRequestRejected) {
  std::vector<uint8_t> frame;
  const std::vector<uint64_t> keys = {1, 2, 3};
  EncodeKeyRequest(MessageType::kQuery, keys, frame);
  std::vector<uint64_t> decoded;
  // Chop bytes off the tail: every prefix must fail cleanly.
  for (size_t keep = 0; keep + kFrameHeaderSize < frame.size(); ++keep) {
    const Status status = DecodeKeyRequest(
        Span<const uint8_t>(frame.data() + kFrameHeaderSize, keep),
        MessageType::kQuery, decoded);
    EXPECT_FALSE(status.ok()) << "prefix of " << keep << " bytes decoded";
  }
}

TEST(ServerProtocolTest, OversizedCountRejected) {
  // Declared count larger than the body actually carries.
  std::vector<uint8_t> frame;
  const std::vector<uint64_t> keys = {1, 2};
  EncodeKeyRequest(MessageType::kQuery, keys, frame);
  frame[kFrameHeaderSize + 1] = 200;  // count LSB: claims 200 keys.
  std::vector<uint64_t> decoded;
  EXPECT_FALSE(
      DecodeKeyRequest(PayloadOf(frame), MessageType::kQuery, decoded).ok());
}

TEST(ServerProtocolTest, TrailingBytesOnEmptyRequestRejected) {
  std::vector<uint8_t> frame;
  EncodeEmptyMessage(MessageType::kPing, frame);
  frame.push_back(0);  // Unexpected body byte.
  EXPECT_FALSE(
      DecodeEmptyMessage(Span<const uint8_t>(frame.data() + kFrameHeaderSize,
                                             frame.size() - kFrameHeaderSize),
                         MessageType::kPing)
          .ok());
}

TEST(ServerProtocolTest, TypeConfusionRejected) {
  std::vector<uint8_t> frame;
  const std::vector<uint64_t> keys = {1};
  EncodeKeyRequest(MessageType::kQuery, keys, frame);
  std::vector<uint64_t> decoded;
  EXPECT_FALSE(
      DecodeKeyRequest(PayloadOf(frame), MessageType::kIngest, decoded).ok());
  EXPECT_FALSE(DecodeEmptyMessage(PayloadOf(frame), MessageType::kPing).ok());
  EXPECT_FALSE(DecodeAckResponse(PayloadOf(frame)).ok());
  std::vector<double> estimates;
  EXPECT_FALSE(DecodeEstimatesResponse(PayloadOf(frame), estimates).ok());
  auto stats = DecodeStatsResponse(PayloadOf(frame));
  EXPECT_FALSE(stats.ok());
}

TEST(ServerProtocolTest, TopKRequestRoundTripsAndRejectsZero) {
  std::vector<uint8_t> frame;
  EncodeTopKRequest(123, frame);
  EXPECT_EQ(LengthPrefixOf(frame), frame.size() - kFrameHeaderSize);
  auto k = DecodeTopKRequest(PayloadOf(frame));
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value(), 123u);

  // k == 0 is a protocol violation, not an empty answer.
  EncodeTopKRequest(0, frame);
  EXPECT_FALSE(DecodeTopKRequest(PayloadOf(frame)).ok());
}

TEST(ServerProtocolTest, TopKReplyRoundTripsEveryField) {
  const std::vector<sketch::HeavyHitter> hitters = {
      {42, 1000.5, 12.25, false},
      {~uint64_t{0}, 3.0, 0.0, true},
      {0, 0.0, 0.0, false},
  };
  std::vector<uint8_t> frame;
  EncodeTopKReply(Span<const sketch::HeavyHitter>(hitters.data(),
                                                  hitters.size()),
                  frame);
  EXPECT_EQ(frame.size() - kFrameHeaderSize,
            1 + 4 + hitters.size() * kWireHitterSize);
  std::vector<sketch::HeavyHitter> decoded;
  ASSERT_TRUE(DecodeTopKReply(PayloadOf(frame), decoded).ok());
  EXPECT_EQ(decoded, hitters);

  EncodeTopKReply({}, frame);
  ASSERT_TRUE(DecodeTopKReply(PayloadOf(frame), decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(ServerProtocolTest, TopKReplyHostilePayloadsRejected) {
  const std::vector<sketch::HeavyHitter> hitters = {{1, 2.0, 0.5, true}};
  std::vector<uint8_t> frame;
  EncodeTopKReply(Span<const sketch::HeavyHitter>(hitters.data(), 1), frame);
  std::vector<sketch::HeavyHitter> decoded;

  // Every truncated prefix fails cleanly.
  for (size_t keep = 0; keep + kFrameHeaderSize < frame.size(); ++keep) {
    EXPECT_FALSE(
        DecodeTopKReply(
            Span<const uint8_t>(frame.data() + kFrameHeaderSize, keep),
            decoded)
            .ok())
        << "prefix of " << keep << " bytes decoded";
  }
  // Count claiming more entries than the body carries.
  std::vector<uint8_t> oversized(PayloadOf(frame).begin(),
                                 PayloadOf(frame).end());
  oversized[1] = 200;
  EXPECT_FALSE(
      DecodeTopKReply(
          Span<const uint8_t>(oversized.data(), oversized.size()), decoded)
          .ok());
  // The guaranteed flag is strictly 0/1 on the wire.
  std::vector<uint8_t> bad_flag(PayloadOf(frame).begin(),
                                PayloadOf(frame).end());
  bad_flag.back() = 2;
  EXPECT_FALSE(
      DecodeTopKReply(Span<const uint8_t>(bad_flag.data(), bad_flag.size()),
                      decoded)
          .ok());
}

TEST(ServerProtocolTest, MetricsFramesRoundTrip) {
  std::vector<uint8_t> frame;
  EncodeEmptyMessage(MessageType::kMetrics, frame);
  EXPECT_TRUE(DecodeEmptyMessage(PayloadOf(frame), MessageType::kMetrics).ok());

  const std::string body =
      "# HELP opthash_items_ingested_total x\n"
      "opthash_items_ingested_total 7\n";
  EncodeMetricsReply(body, frame);
  std::string decoded;
  ASSERT_TRUE(DecodeMetricsReply(PayloadOf(frame), decoded).ok());
  EXPECT_EQ(decoded, body);

  // Pathological scrape bodies clamp to the frame cap instead of
  // breaching it.
  EncodeMetricsReply(std::string(kMaxFramePayload + 1000, 'x'), frame);
  EXPECT_LE(frame.size() - kFrameHeaderSize, kMaxFramePayload);
  ASSERT_TRUE(DecodeMetricsReply(PayloadOf(frame), decoded).ok());
}

TEST(ServerProtocolTest, ScopedRequestRoundTripsHeaderAndInnerPayload) {
  std::vector<uint8_t> inner_frame;
  EncodeTopKRequest(9, inner_frame);
  RequestHeader header;
  header.model_id = 31337;
  std::vector<uint8_t> frame;
  EncodeScopedRequest(header, PayloadOf(inner_frame), frame);

  RequestHeader decoded;
  Span<const uint8_t> inner(nullptr, 0);
  ASSERT_TRUE(DecodeScopedRequest(PayloadOf(frame), decoded, inner).ok());
  EXPECT_EQ(decoded.version, kRequestHeaderVersion);
  EXPECT_EQ(decoded.model_id, 31337u);
  auto type = PeekMessageType(inner);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(type.value(), MessageType::kTopK);
  auto k = DecodeTopKRequest(inner);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k.value(), 9u);
}

TEST(ServerProtocolTest, ScopedRequestHostilePayloadsRejected) {
  std::vector<uint8_t> inner_frame;
  EncodeEmptyMessage(MessageType::kPing, inner_frame);
  RequestHeader header;
  header.model_id = 1;
  std::vector<uint8_t> frame;
  EncodeScopedRequest(header, PayloadOf(inner_frame), frame);

  RequestHeader decoded;
  Span<const uint8_t> inner(nullptr, 0);
  // Truncations: header alone (no inner payload) must fail too.
  for (size_t keep = 0; keep + kFrameHeaderSize < frame.size(); ++keep) {
    EXPECT_FALSE(
        DecodeScopedRequest(
            Span<const uint8_t>(frame.data() + kFrameHeaderSize, keep),
            decoded, inner)
            .ok())
        << "prefix of " << keep << " bytes decoded";
  }
  // Unknown header versions are rejected (forward-compat gate).
  std::vector<uint8_t> bad_version(PayloadOf(frame).begin(),
                                   PayloadOf(frame).end());
  bad_version[1] = kRequestHeaderVersion + 1;
  EXPECT_FALSE(
      DecodeScopedRequest(
          Span<const uint8_t>(bad_version.data(), bad_version.size()),
          decoded, inner)
          .ok());
  // Envelopes cannot nest: a scoped request inside a scoped request is a
  // protocol violation, not a recursion.
  std::vector<uint8_t> once;
  EncodeScopedRequest(header, PayloadOf(inner_frame), once);
  std::vector<uint8_t> twice;
  EncodeScopedRequest(header, PayloadOf(once), twice);
  EXPECT_FALSE(DecodeScopedRequest(PayloadOf(twice), decoded, inner).ok());
}

TEST(ServerProtocolTest, UnscopedWireBytesUnchangedByEnvelopeIntroduction) {
  // Golden frames: a client with the default model id must emit exactly
  // the pre-envelope bytes, or old daemons break. These are the wire
  // images from before kScopedRequest existed.
  std::vector<uint8_t> frame;
  EncodeEmptyMessage(MessageType::kPing, frame);
  EXPECT_EQ(frame, (std::vector<uint8_t>{1, 0, 0, 0, 4}));
  EncodeEmptyMessage(MessageType::kStats, frame);
  EXPECT_EQ(frame, (std::vector<uint8_t>{1, 0, 0, 0, 3}));
  const std::vector<uint64_t> keys = {2};
  EncodeKeyRequest(MessageType::kQuery,
                   Span<const uint64_t>(keys.data(), 1), frame);
  EXPECT_EQ(frame, (std::vector<uint8_t>{13, 0, 0, 0, 1, 1, 0, 0, 0, 2, 0, 0,
                                         0, 0, 0, 0, 0}));
  // And the new request types pin their documented layouts.
  EncodeTopKRequest(5, frame);
  EXPECT_EQ(frame, (std::vector<uint8_t>{5, 0, 0, 0, 7, 5, 0, 0, 0}));
  EncodeEmptyMessage(MessageType::kMetrics, frame);
  EXPECT_EQ(frame, (std::vector<uint8_t>{1, 0, 0, 0, 8}));
  RequestHeader header;
  header.model_id = 6;
  std::vector<uint8_t> ping;
  EncodeEmptyMessage(MessageType::kPing, ping);
  EncodeScopedRequest(header, PayloadOf(ping), frame);
  EXPECT_EQ(frame, (std::vector<uint8_t>{7, 0, 0, 0, 9, 1, 6, 0, 0, 0, 4}));
}

TEST(ServerProtocolTest, WindowStatsFramesGoldenBytesRoundTrip) {
  // The windowed-counting wire pair, pinned byte for byte against the
  // docs/OPERATIONS.md layout (request type 10, reply type 135) so a
  // codec change that would strand deployed clients fails here.
  std::vector<uint8_t> frame;
  EncodeEmptyMessage(MessageType::kWindowStats, frame);
  EXPECT_EQ(frame, (std::vector<uint8_t>{1, 0, 0, 0, 10}));
  EXPECT_TRUE(
      DecodeEmptyMessage(PayloadOf(frame), MessageType::kWindowStats).ok());

  WindowStatsSnapshot stats;
  stats.window_items = 4;
  stats.window_sequence = 7;
  stats.items_in_current_window = 2;
  stats.decay = 0.5;
  stats.window_counts = {3, 1};
  EncodeWindowStatsReply(stats, frame);
  EXPECT_EQ(frame,
            (std::vector<uint8_t>{
                53, 0, 0, 0,                       // length prefix
                135,                               // kWindowStatsReply
                4, 0, 0, 0, 0, 0, 0, 0,            // window_items
                7, 0, 0, 0, 0, 0, 0, 0,            // window_sequence
                2, 0, 0, 0, 0, 0, 0, 0,            // items_in_current_window
                0, 0, 0, 0, 0, 0, 0xe0, 0x3f,      // decay 0.5 (IEEE-754)
                2, 0, 0, 0,                        // window count
                3, 0, 0, 0, 0, 0, 0, 0,            // oldest window first
                1, 0, 0, 0, 0, 0, 0, 0}));
  auto decoded = DecodeWindowStatsReply(PayloadOf(frame));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().window_items, 4u);
  EXPECT_EQ(decoded.value().window_sequence, 7u);
  EXPECT_EQ(decoded.value().items_in_current_window, 2u);
  EXPECT_DOUBLE_EQ(decoded.value().decay, 0.5);
  EXPECT_EQ(decoded.value().window_counts, (std::vector<uint64_t>{3, 1}));
}

TEST(ServerProtocolTest, WindowStatsReplyHostilePayloadsRejected) {
  WindowStatsSnapshot stats;
  stats.window_counts = {5, 6, 7};
  std::vector<uint8_t> frame;
  EncodeWindowStatsReply(stats, frame);

  // Truncations at every boundary: inside the fixed prefix and inside
  // the per-window counts must both reject, never over-read.
  for (const size_t keep : {size_t{1}, size_t{8}, size_t{36},
                            frame.size() - kFrameHeaderSize - 3}) {
    const Span<const uint8_t> cut(frame.data() + kFrameHeaderSize, keep);
    EXPECT_FALSE(DecodeWindowStatsReply(cut).ok()) << keep;
  }

  // Declared window count inconsistent with the carried body bytes.
  std::vector<uint8_t> lying = frame;
  lying[kFrameHeaderSize + 33] = 200;  // count field, says 200 windows
  EXPECT_FALSE(DecodeWindowStatsReply(PayloadOf(lying)).ok());

  // Type confusion: a pong is not a window-stats-reply, a reply is not
  // the empty request, and a request with a body is a violation.
  std::vector<uint8_t> pong;
  EncodeEmptyMessage(MessageType::kPong, pong);
  EXPECT_FALSE(DecodeWindowStatsReply(PayloadOf(pong)).ok());
  EXPECT_FALSE(
      DecodeEmptyMessage(PayloadOf(frame), MessageType::kWindowStats).ok());
  std::vector<uint8_t> fat_request = {
      static_cast<uint8_t>(MessageType::kWindowStats), 0};
  EXPECT_FALSE(
      DecodeEmptyMessage(
          Span<const uint8_t>(fat_request.data(), fat_request.size()),
          MessageType::kWindowStats)
          .ok());
}

TEST(ServerProtocolTest, ErrorMessageClampedToFrameLimit) {
  // A pathologically long message must not breach kMaxFramePayload.
  const std::string huge(kMaxFramePayload + 1000, 'x');
  std::vector<uint8_t> frame;
  EncodeErrorResponse(Status::Internal(huge), frame);
  EXPECT_LE(frame.size() - kFrameHeaderSize, kMaxFramePayload);
  Status remote;
  ASSERT_TRUE(DecodeErrorResponse(PayloadOf(frame), remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace opthash::server

#include "common/prefix_sums.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash {
namespace {

TEST(PrefixSumsTest, EmptySequence) {
  PrefixSums sums((std::vector<double>()));
  EXPECT_EQ(sums.size(), 0u);
  EXPECT_TRUE(sums.empty());
  EXPECT_DOUBLE_EQ(sums.Head(0), 0.0);
}

TEST(PrefixSumsTest, SingleElement) {
  PrefixSums sums(std::vector<double>{3.5});
  EXPECT_EQ(sums.size(), 1u);
  EXPECT_DOUBLE_EQ(sums.Sum(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(sums.Head(1), 3.5);
}

TEST(PrefixSumsTest, RangeSums) {
  PrefixSums sums(std::vector<double>{1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(sums.Sum(0, 4), 15.0);
  EXPECT_DOUBLE_EQ(sums.Sum(1, 3), 9.0);
  EXPECT_DOUBLE_EQ(sums.Sum(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(sums.Head(3), 6.0);
}

TEST(PrefixSumsTest, NegativeValues) {
  PrefixSums sums(std::vector<double>{-1.0, 2.0, -3.0});
  EXPECT_DOUBLE_EQ(sums.Sum(0, 2), -2.0);
  EXPECT_DOUBLE_EQ(sums.Sum(0, 1), 1.0);
}

TEST(PrefixSumsTest, MatchesNaiveOnRandomData) {
  Rng rng(99);
  std::vector<double> values(200);
  for (double& v : values) v = rng.NextDouble(-10.0, 10.0);
  PrefixSums sums(values);
  for (int trial = 0; trial < 500; ++trial) {
    size_t i = rng.NextBounded(values.size());
    size_t j = i + rng.NextBounded(values.size() - i);
    double naive = 0.0;
    for (size_t t = i; t <= j; ++t) naive += values[t];
    EXPECT_NEAR(sums.Sum(i, j), naive, 1e-9);
  }
}

}  // namespace
}  // namespace opthash

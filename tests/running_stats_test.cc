#include "common/running_stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_TRUE(std::isnan(stats.min()));
  EXPECT_TRUE(std::isnan(stats.max()));
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(4.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MatchesNaiveOnRandomData) {
  Rng rng(7);
  RunningStats stats;
  std::vector<double> values(5000);
  for (double& v : values) {
    v = rng.NextGaussian() * 3.0 + 1.0;
    stats.Add(v);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-6);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats stats;
  stats.Add(1.0);
  stats.Add(2.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
}

}  // namespace
}  // namespace opthash

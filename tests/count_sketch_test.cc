#include "sketch/count_sketch.h"

#include <cmath>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::sketch {
namespace {

TEST(CountSketchTest, ExactWhenNoCollisions) {
  CountSketch sketch(1 << 14, 5, 1);
  for (uint64_t key = 0; key < 10; ++key) {
    sketch.Update(key, static_cast<int64_t>(key) + 1);
  }
  for (uint64_t key = 0; key < 10; ++key) {
    EXPECT_EQ(sketch.Estimate(key), static_cast<int64_t>(key) + 1);
  }
}

TEST(CountSketchTest, ApproximatelyUnbiased) {
  // The Count Sketch estimator is unbiased over the *sketch* randomness:
  // for a fixed stream, the estimate of a key averaged over independent
  // sketches converges to the true count. (Contrast with the CMS, whose
  // error is strictly one-sided.)
  Rng rng(3);
  std::vector<uint64_t> stream(20000);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (auto& key : stream) {
    key = rng.NextBounded(500);
    ++truth[key];
  }
  const std::vector<uint64_t> probes = {0, 1, 2, 10, 100, 499};
  std::vector<double> mean_estimates(probes.size(), 0.0);
  constexpr int kSketches = 400;
  for (int s = 0; s < kSketches; ++s) {
    CountSketch sketch(64, 1, 1000 + static_cast<uint64_t>(s));
    for (uint64_t key : stream) sketch.Update(key);
    for (size_t p = 0; p < probes.size(); ++p) {
      mean_estimates[p] += static_cast<double>(sketch.Estimate(probes[p]));
    }
  }
  for (size_t p = 0; p < probes.size(); ++p) {
    mean_estimates[p] /= kSketches;
    const double true_count = static_cast<double>(truth[probes[p]]);
    // Standard error of the mean ~ ||f||_2 / sqrt(width * kSketches) ~ 12.
    EXPECT_NEAR(mean_estimates[p], true_count, 40.0)
        << "probe key " << probes[p];
  }
}

TEST(CountSketchTest, CanUnderAndOverEstimate) {
  CountSketch sketch(16, 1, 5);
  Rng rng(6);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (int t = 0; t < 5000; ++t) {
    const uint64_t key = rng.NextBounded(300);
    sketch.Update(key);
    ++truth[key];
  }
  bool under = false;
  bool over = false;
  for (const auto& [key, count] : truth) {
    const int64_t estimate = sketch.Estimate(key);
    if (estimate < static_cast<int64_t>(count)) under = true;
    if (estimate > static_cast<int64_t>(count)) over = true;
  }
  EXPECT_TRUE(under);
  EXPECT_TRUE(over);
}

TEST(CountSketchTest, NonNegativeClamp) {
  CountSketch sketch(4, 1, 7);
  // Force likely-negative estimates for unseen keys by inserting heavy
  // negatively-correlated traffic.
  for (uint64_t key = 0; key < 100; ++key) sketch.Update(key, 50);
  for (uint64_t probe = 1000; probe < 1100; ++probe) {
    EXPECT_GE(sketch.EstimateNonNegative(probe), 0u);
  }
}

TEST(CountSketchTest, MedianBeatsSingleLevelOnSkewedData) {
  // Error of a depth-5 sketch should typically be below a depth-1 sketch of
  // the same width (the whole point of median-of-levels).
  Rng rng(8);
  ZipfSampler zipf(2000, 1.2);
  std::vector<uint64_t> stream(60000);
  for (auto& key : stream) key = zipf.Sample(rng);

  CountSketch deep(128, 5, 9);
  CountSketch shallow(128, 1, 9);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t key : stream) {
    deep.Update(key);
    shallow.Update(key);
    ++truth[key];
  }
  double deep_error = 0.0;
  double shallow_error = 0.0;
  for (const auto& [key, count] : truth) {
    deep_error += std::abs(static_cast<double>(deep.Estimate(key)) -
                           static_cast<double>(count));
    shallow_error += std::abs(static_cast<double>(shallow.Estimate(key)) -
                              static_cast<double>(count));
  }
  EXPECT_LT(deep_error, shallow_error);
}

TEST(CountSketchTest, MemoryAccounting) {
  CountSketch sketch(64, 3, 10);
  EXPECT_EQ(sketch.TotalBuckets(), 192u);
}

TEST(CountSketchTest, NegativeUpdatesSupported) {
  CountSketch sketch(1 << 12, 5, 11);
  sketch.Update(42, 10);
  sketch.Update(42, -4);
  EXPECT_EQ(sketch.Estimate(42), 6);
}

}  // namespace
}  // namespace opthash::sketch

#include "sketch/learned_count_min.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::sketch {
namespace {

TEST(LearnedCmsTest, HeavyKeysCountedExactly) {
  const std::vector<uint64_t> heavy = {1, 2, 3};
  auto result = LearnedCountMinSketch::Create(100, 2, heavy, 1);
  ASSERT_TRUE(result.ok());
  LearnedCountMinSketch& sketch = result.value();
  for (int rep = 0; rep < 50; ++rep) sketch.Update(1);
  for (int rep = 0; rep < 7; ++rep) sketch.Update(2);
  sketch.Update(999);
  EXPECT_EQ(sketch.Estimate(1), 50u);
  EXPECT_EQ(sketch.Estimate(2), 7u);
  EXPECT_EQ(sketch.Estimate(3), 0u);
}

TEST(LearnedCmsTest, NonHeavyKeysGoToRemainder) {
  auto result = LearnedCountMinSketch::Create(64, 2, {5}, 2);
  ASSERT_TRUE(result.ok());
  LearnedCountMinSketch& sketch = result.value();
  Rng rng(3);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (int t = 0; t < 5000; ++t) {
    const uint64_t key = 100 + rng.NextBounded(200);
    sketch.Update(key);
    ++truth[key];
  }
  // Remainder behaves like a CMS: one-sided error.
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.Estimate(key), count);
  }
}

TEST(LearnedCmsTest, HeavyBucketsCostTwoUnits) {
  // 100 total buckets, 10 heavy keys -> remainder has 100 - 20 = 80 buckets.
  std::vector<uint64_t> heavy(10);
  for (size_t i = 0; i < heavy.size(); ++i) heavy[i] = i;
  auto result = LearnedCountMinSketch::Create(100, 2, heavy, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().remainder_sketch().TotalBuckets(), 80u);
  EXPECT_EQ(result.value().TotalBuckets(), 100u);
}

TEST(LearnedCmsTest, RejectsOversizedHeavySet) {
  std::vector<uint64_t> heavy(50);
  for (size_t i = 0; i < heavy.size(); ++i) heavy[i] = i;
  // 2 * 50 = 100 >= 100 leaves no CMS room.
  EXPECT_FALSE(LearnedCountMinSketch::Create(100, 2, heavy, 5).ok());
  EXPECT_FALSE(LearnedCountMinSketch::Create(90, 2, heavy, 5).ok());
  EXPECT_TRUE(LearnedCountMinSketch::Create(101, 2, heavy, 5).ok());
}

TEST(LearnedCmsTest, RejectsZeroDepth) {
  EXPECT_FALSE(LearnedCountMinSketch::Create(100, 0, {1}, 6).ok());
}

TEST(LearnedCmsTest, IdealOracleBeatsPlainCmsOnZipf) {
  // The paper's core claim for LCMS: exact heavy-hitter counting reduces
  // error on skewed streams at equal memory.
  Rng rng(7);
  ZipfSampler zipf(5000, 1.2);
  std::vector<uint64_t> stream(100000);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (auto& key : stream) {
    key = zipf.Sample(rng);
    ++truth[key];
  }
  const std::vector<uint64_t> heavy = SelectTopKeys(truth, 50);

  constexpr size_t kBudget = 400;
  auto lcms_result = LearnedCountMinSketch::Create(kBudget, 2, heavy, 8);
  ASSERT_TRUE(lcms_result.ok());
  LearnedCountMinSketch& lcms = lcms_result.value();
  CountMinSketch cms(kBudget / 2, 2, 8);

  for (uint64_t key : stream) {
    lcms.Update(key);
    cms.Update(key);
  }
  double lcms_error = 0.0;
  double cms_error = 0.0;
  for (const auto& [key, count] : truth) {
    lcms_error += static_cast<double>(lcms.Estimate(key) - count);
    cms_error += static_cast<double>(cms.Estimate(key) - count);
  }
  EXPECT_LT(lcms_error, cms_error);
}

TEST(SelectTopKeysTest, PicksHighestFrequencies) {
  std::unordered_map<uint64_t, uint64_t> freqs = {
      {10, 5}, {20, 50}, {30, 7}, {40, 100}};
  const std::vector<uint64_t> top = SelectTopKeys(freqs, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 40u);
  EXPECT_EQ(top[1], 20u);
}

TEST(SelectTopKeysTest, DeterministicTieBreakByKey) {
  std::unordered_map<uint64_t, uint64_t> freqs = {{3, 9}, {1, 9}, {2, 9}};
  const std::vector<uint64_t> top = SelectTopKeys(freqs, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
}

TEST(SelectTopKeysTest, CountLargerThanMapReturnsAll) {
  std::unordered_map<uint64_t, uint64_t> freqs = {{1, 2}, {2, 1}};
  EXPECT_EQ(SelectTopKeys(freqs, 10).size(), 2u);
}

}  // namespace
}  // namespace opthash::sketch

#include "ml/decision_tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/metrics.h"

namespace opthash::ml {
namespace {

Dataset XorDataset(size_t per_quadrant, uint64_t seed) {
  // XOR is not linearly separable: a tree needs depth >= 2.
  Rng rng(seed);
  Dataset data(2);
  for (size_t i = 0; i < per_quadrant; ++i) {
    for (int sx : {-1, 1}) {
      for (int sy : {-1, 1}) {
        const double x = sx * (1.0 + rng.NextDouble());
        const double y = sy * (1.0 + rng.NextDouble());
        data.Add({x, y}, (sx * sy > 0) ? 1 : 0);
      }
    }
  }
  return data;
}

TEST(DecisionTreeTest, FitsXorPerfectly) {
  const Dataset data = XorDataset(30, 1);
  DecisionTree tree;
  tree.Fit(data);
  const std::vector<int> predictions = tree.PredictBatch(data);
  EXPECT_DOUBLE_EQ(Accuracy(data.labels(), predictions), 1.0);
  EXPECT_GE(tree.Depth(), 2u);
}

TEST(DecisionTreeTest, DepthZeroIsMajorityVote) {
  Dataset data(1);
  data.Add({0.0}, 0);
  data.Add({1.0}, 1);
  data.Add({2.0}, 1);
  DecisionTreeConfig config;
  config.max_depth = 0;
  DecisionTree tree(config);
  tree.Fit(data);
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_EQ(tree.Predict({0.0}), 1);
  EXPECT_EQ(tree.Predict({5.0}), 1);
}

TEST(DecisionTreeTest, MaxDepthBoundsTree) {
  const Dataset data = XorDataset(40, 2);
  for (size_t depth : {1u, 2u, 3u, 5u}) {
    DecisionTreeConfig config;
    config.max_depth = depth;
    DecisionTree tree(config);
    tree.Fit(data);
    EXPECT_LE(tree.Depth(), depth);
  }
}

TEST(DecisionTreeTest, MinImpurityDecreasePrunes) {
  const Dataset data = XorDataset(30, 3);
  DecisionTreeConfig lax;
  DecisionTreeConfig strict;
  strict.min_impurity_decrease = 0.6;  // Larger than any achievable gain.
  DecisionTree lax_tree(lax);
  DecisionTree strict_tree(strict);
  lax_tree.Fit(data);
  strict_tree.Fit(data);
  EXPECT_GT(lax_tree.NodeCount(), strict_tree.NodeCount());
  EXPECT_EQ(strict_tree.NodeCount(), 1u);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) {
    data.Add({static_cast<double>(i)}, i < 5 ? 0 : 1);
  }
  // With min_samples_leaf = 6, every possible split of 10 examples leaves
  // one side below the minimum, so even this perfectly splittable data must
  // stay a stump.
  DecisionTreeConfig config;
  config.min_samples_leaf = 6;
  DecisionTree tree(config);
  tree.Fit(data);
  EXPECT_EQ(tree.NodeCount(), 1u);

  // With min_samples_leaf = 5, the balanced 5/5 split is allowed.
  DecisionTreeConfig relaxed;
  relaxed.min_samples_leaf = 5;
  DecisionTree relaxed_tree(relaxed);
  relaxed_tree.Fit(data);
  EXPECT_EQ(relaxed_tree.NodeCount(), 3u);
}

TEST(DecisionTreeTest, PureNodeStopsSplitting) {
  Dataset data(2);
  for (int i = 0; i < 20; ++i) {
    data.Add({static_cast<double>(i), static_cast<double>(-i)}, 3);
  }
  DecisionTree tree;
  tree.Fit(data);
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_EQ(tree.Predict({100.0, 100.0}), 3);
}

TEST(DecisionTreeTest, FeatureImportancesIdentifyInformativeFeature) {
  Rng rng(4);
  Dataset data(3);
  for (int i = 0; i < 200; ++i) {
    const double informative = rng.NextGaussian();
    data.Add({rng.NextGaussian(), informative, rng.NextGaussian()},
             informative > 0 ? 1 : 0);
  }
  DecisionTree tree;
  tree.Fit(data);
  const std::vector<double> importances = tree.FeatureImportances();
  ASSERT_EQ(importances.size(), 3u);
  EXPECT_GT(importances[1], importances[0]);
  EXPECT_GT(importances[1], importances[2]);
  double total = importances[0] + importances[1] + importances[2];
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DecisionTreeTest, TiedFeatureValuesHandled) {
  Dataset data(1);
  data.Add({1.0}, 0);
  data.Add({1.0}, 1);
  data.Add({1.0}, 0);
  DecisionTree tree;
  tree.Fit(data);  // No split possible on a constant feature.
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_EQ(tree.Predict({1.0}), 0);
}

TEST(DecisionTreeTest, MaxFeaturesSubsampling) {
  const Dataset data = XorDataset(30, 5);
  DecisionTreeConfig config;
  config.max_features = 1;
  config.seed = 99;
  DecisionTree tree(config);
  tree.Fit(data);
  // Tree still trains (possibly deeper than with both features available).
  const std::vector<int> predictions = tree.PredictBatch(data);
  EXPECT_GE(Accuracy(data.labels(), predictions), 0.9);
}

TEST(DecisionTreeTest, DeterministicGivenConfig) {
  const Dataset data = XorDataset(20, 6);
  DecisionTree a;
  DecisionTree b;
  a.Fit(data);
  b.Fit(data);
  EXPECT_EQ(a.NodeCount(), b.NodeCount());
  for (size_t i = 0; i < data.NumExamples(); ++i) {
    EXPECT_EQ(a.Predict(data.Features(i)), b.Predict(data.Features(i)));
  }
}

class TreeDepthSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TreeDepthSweep, TrainAccuracyNonDecreasingInDepth) {
  const Dataset data = XorDataset(40, 7);
  DecisionTreeConfig shallow_config;
  shallow_config.max_depth = GetParam();
  DecisionTreeConfig deeper_config;
  deeper_config.max_depth = GetParam() + 2;
  DecisionTree shallow(shallow_config);
  DecisionTree deeper(deeper_config);
  shallow.Fit(data);
  deeper.Fit(data);
  EXPECT_GE(Accuracy(data.labels(), deeper.PredictBatch(data)),
            Accuracy(data.labels(), shallow.PredictBatch(data)) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeDepthSweep, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace opthash::ml

#include "sketch/misra_gries.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::sketch {
namespace {

TEST(MisraGriesTest, ExactWhenUnderCapacity) {
  MisraGries summary(10);
  for (int rep = 0; rep < 5; ++rep) summary.Update(1);
  for (int rep = 0; rep < 3; ++rep) summary.Update(2);
  EXPECT_EQ(summary.Estimate(1), 5u);
  EXPECT_EQ(summary.Estimate(2), 3u);
  EXPECT_EQ(summary.Estimate(99), 0u);
  EXPECT_EQ(summary.size(), 2u);
}

TEST(MisraGriesTest, NeverOverestimates) {
  MisraGries summary(20);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(1);
  ZipfSampler zipf(500, 1.1);
  for (int t = 0; t < 50000; ++t) {
    const uint64_t key = zipf.Sample(rng);
    summary.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_LE(summary.Estimate(key), count);
  }
}

TEST(MisraGriesTest, DeterministicErrorBound) {
  // f_key - estimate <= total / (capacity + 1) for every key.
  MisraGries summary(15);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(2);
  ZipfSampler zipf(300, 1.0);
  for (int t = 0; t < 30000; ++t) {
    const uint64_t key = zipf.Sample(rng);
    summary.Update(key);
    ++truth[key];
  }
  const double bound = summary.ErrorBound();
  for (const auto& [key, count] : truth) {
    EXPECT_LE(static_cast<double>(count) -
                  static_cast<double>(summary.Estimate(key)),
              bound + 1e-9)
        << "key " << key;
  }
}

TEST(MisraGriesTest, GuaranteedToTrackTrueHeavyHitters) {
  // Any key with frequency > total/(capacity+1) must be tracked.
  MisraGries summary(9);
  // One key takes 30% of a 10k stream; 9 counters, bound = 1000.
  Rng rng(3);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (int t = 0; t < 10000; ++t) {
    const uint64_t key =
        rng.NextBernoulli(0.3) ? 7777 : 100 + rng.NextBounded(400);
    summary.Update(key);
    ++truth[key];
  }
  EXPECT_TRUE(summary.IsTracked(7777));
  EXPECT_GT(summary.Estimate(7777), truth[7777] - 10000 / 10);
}

TEST(MisraGriesTest, CapacityNeverExceeded) {
  MisraGries summary(5);
  Rng rng(4);
  for (int t = 0; t < 10000; ++t) {
    summary.Update(rng.NextBounded(1000));
    EXPECT_LE(summary.size(), 5u);
  }
}

TEST(MisraGriesTest, HeavyEntriesSortedByCount) {
  MisraGries summary(10);
  for (int rep = 0; rep < 30; ++rep) summary.Update(1);
  for (int rep = 0; rep < 50; ++rep) summary.Update(2);
  for (int rep = 0; rep < 10; ++rep) summary.Update(3);
  const auto entries = summary.HeavyEntries(15);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 2u);
  EXPECT_EQ(entries[1].first, 1u);
}

TEST(MisraGriesTest, WeightedUpdates) {
  MisraGries summary(3);
  summary.Update(1, 100);
  summary.Update(2, 1);
  summary.Update(3, 1);
  summary.Update(4, 2);  // Decrements everyone by 1, inserts 4 with 1.
  EXPECT_EQ(summary.Estimate(1), 99u);
  EXPECT_EQ(summary.Estimate(2), 0u);
  EXPECT_EQ(summary.Estimate(3), 0u);
  EXPECT_EQ(summary.Estimate(4), 1u);
  EXPECT_EQ(summary.total_count(), 104u);
}

TEST(MisraGriesTest, MemoryAccounting) {
  MisraGries summary(50);
  EXPECT_EQ(summary.MemoryBuckets(), 100u);
}

class MisraGriesCapacitySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MisraGriesCapacitySweep, BoundHoldsAcrossCapacities) {
  MisraGries summary(GetParam());
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(5);
  ZipfSampler zipf(200, 1.2);
  for (int t = 0; t < 20000; ++t) {
    const uint64_t key = zipf.Sample(rng);
    summary.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_LE(static_cast<double>(count - summary.Estimate(key)),
              summary.ErrorBound() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, MisraGriesCapacitySweep,
                         ::testing::Values(1, 2, 5, 20, 100));

}  // namespace
}  // namespace opthash::sketch

#include "opt/initialization.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "opt/objective.h"
#include "opt_test_util.h"

namespace opthash::opt {
namespace {

TEST(InitializationTest, RandomAssignsEveryElementAValidBucket) {
  const HashingProblem problem = testutil::RandomProblem(100, 7, 1.0, 0, 1);
  Rng rng(9);
  const Assignment assignment =
      InitializeAssignment(problem, InitStrategy::kRandom, rng);
  EXPECT_TRUE(IsValidAssignment(problem, assignment));
  // With 100 elements and 7 buckets, all buckets should be hit w.h.p.
  std::set<int32_t> used(assignment.begin(), assignment.end());
  EXPECT_GE(used.size(), 5u);
}

TEST(InitializationTest, SortedSplitGroupsByFrequency) {
  HashingProblem problem;
  problem.frequencies = {10.0, 1.0, 5.0, 2.0, 20.0, 7.0};
  problem.num_buckets = 3;
  problem.lambda = 1.0;
  Rng rng(1);
  const Assignment assignment =
      InitializeAssignment(problem, InitStrategy::kSortedSplit, rng);
  EXPECT_TRUE(IsValidAssignment(problem, assignment));
  // Chunks of 2 in ascending frequency: {1,2} -> 0, {5,7} -> 1, {10,20} -> 2.
  EXPECT_EQ(assignment[1], assignment[3]);  // 1 and 2.
  EXPECT_EQ(assignment[2], assignment[5]);  // 5 and 7.
  EXPECT_EQ(assignment[0], assignment[4]);  // 10 and 20.
  // Monotone: bucket of light elements < bucket of heavy elements.
  EXPECT_LT(assignment[1], assignment[2]);
  EXPECT_LT(assignment[2], assignment[0]);
}

TEST(InitializationTest, HeavyHitterGivesPrivateBucketsToTopElements) {
  HashingProblem problem;
  problem.frequencies = {3.0, 100.0, 50.0, 2.0, 1.0};
  problem.num_buckets = 3;
  problem.lambda = 1.0;
  Rng rng(2);
  const Assignment assignment =
      InitializeAssignment(problem, InitStrategy::kHeavyHitter, rng);
  EXPECT_TRUE(IsValidAssignment(problem, assignment));
  // Top-2 elements (100 and 50) get buckets 1 and 2; the rest share 0.
  EXPECT_EQ(assignment[1], 1);
  EXPECT_EQ(assignment[2], 2);
  EXPECT_EQ(assignment[0], 0);
  EXPECT_EQ(assignment[3], 0);
  EXPECT_EQ(assignment[4], 0);
}

TEST(InitializationTest, DpWarmStartIsOptimalForLambdaOne) {
  const HashingProblem problem = testutil::RandomProblem(9, 3, 1.0, 0, 3);
  Rng rng(3);
  const Assignment assignment =
      InitializeAssignment(problem, InitStrategy::kDpWarmStart, rng);
  EXPECT_TRUE(IsValidAssignment(problem, assignment));
  const double brute = testutil::BruteForceOptimum(problem);
  EXPECT_NEAR(EvaluateObjective(problem, assignment).overall, brute, 1e-9);
}

TEST(InitializationTest, AllStrategiesValidOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(30, 4, 0.5, 2, seed);
    Rng rng(seed);
    for (InitStrategy strategy :
         {InitStrategy::kRandom, InitStrategy::kSortedSplit,
          InitStrategy::kHeavyHitter, InitStrategy::kDpWarmStart}) {
      const Assignment assignment =
          InitializeAssignment(problem, strategy, rng);
      EXPECT_TRUE(IsValidAssignment(problem, assignment))
          << InitStrategyName(strategy);
    }
  }
}

TEST(InitializationTest, StrategyNames) {
  EXPECT_STREQ(InitStrategyName(InitStrategy::kRandom), "random");
  EXPECT_STREQ(InitStrategyName(InitStrategy::kSortedSplit), "sorted_split");
  EXPECT_STREQ(InitStrategyName(InitStrategy::kHeavyHitter), "heavy_hitter");
  EXPECT_STREQ(InitStrategyName(InitStrategy::kDpWarmStart), "dp_warm_start");
}

TEST(InitializationTest, MoreBucketsThanElements) {
  HashingProblem problem;
  problem.frequencies = {4.0, 2.0};
  problem.num_buckets = 5;
  problem.lambda = 1.0;
  Rng rng(4);
  for (InitStrategy strategy :
       {InitStrategy::kRandom, InitStrategy::kSortedSplit,
        InitStrategy::kHeavyHitter, InitStrategy::kDpWarmStart}) {
    const Assignment assignment = InitializeAssignment(problem, strategy, rng);
    EXPECT_TRUE(IsValidAssignment(problem, assignment))
        << InitStrategyName(strategy);
  }
}

}  // namespace
}  // namespace opthash::opt

#include "core/evaluation.h"

#include <gtest/gtest.h>

namespace opthash::core {
namespace {

// An estimator with scripted answers for testing the metric arithmetic.
class FakeEstimator : public FrequencyEstimator {
 public:
  explicit FakeEstimator(std::unordered_map<uint64_t, double> estimates)
      : estimates_(std::move(estimates)) {}

  void Update(const stream::StreamItem&) override {}
  double Estimate(const stream::StreamItem& item) const override {
    auto it = estimates_.find(item.id);
    return it == estimates_.end() ? 0.0 : it->second;
  }
  size_t MemoryBuckets() const override { return 0; }
  const char* Name() const override { return "fake"; }

 private:
  std::unordered_map<uint64_t, double> estimates_;
};

TEST(EvaluationTest, EmptyQuerySet) {
  FakeEstimator estimator({});
  const ErrorMetrics metrics = EvaluateEstimator(estimator, {});
  EXPECT_EQ(metrics.num_queries, 0u);
  EXPECT_DOUBLE_EQ(metrics.average_absolute_error, 0.0);
  EXPECT_DOUBLE_EQ(metrics.expected_magnitude_error, 0.0);
}

TEST(EvaluationTest, PerfectEstimatorZeroError) {
  FakeEstimator estimator({{1, 10.0}, {2, 5.0}});
  const std::vector<EvalQuery> queries = {{{1, nullptr}, 10.0},
                                          {{2, nullptr}, 5.0}};
  const ErrorMetrics metrics = EvaluateEstimator(estimator, queries);
  EXPECT_DOUBLE_EQ(metrics.average_absolute_error, 0.0);
  EXPECT_DOUBLE_EQ(metrics.expected_magnitude_error, 0.0);
  EXPECT_EQ(metrics.num_queries, 2u);
}

TEST(EvaluationTest, AverageAbsoluteErrorUniformWeights) {
  // Errors: |10-12| = 2 and |100-90| = 10 -> average 6.
  FakeEstimator estimator({{1, 12.0}, {2, 90.0}});
  const std::vector<EvalQuery> queries = {{{1, nullptr}, 10.0},
                                          {{2, nullptr}, 100.0}};
  const ErrorMetrics metrics = EvaluateEstimator(estimator, queries);
  EXPECT_DOUBLE_EQ(metrics.average_absolute_error, 6.0);
}

TEST(EvaluationTest, ExpectedMagnitudeWeighsByFrequency) {
  // Weighted: (10*2 + 100*10) / 110 = 1020/110.
  FakeEstimator estimator({{1, 12.0}, {2, 90.0}});
  const std::vector<EvalQuery> queries = {{{1, nullptr}, 10.0},
                                          {{2, nullptr}, 100.0}};
  const ErrorMetrics metrics = EvaluateEstimator(estimator, queries);
  EXPECT_NEAR(metrics.expected_magnitude_error, 1020.0 / 110.0, 1e-12);
}

TEST(EvaluationTest, MetricsDivergeWhenRareElementsMispredicted) {
  // Large error on a rare element inflates the average metric much more
  // than the frequency-weighted one — the phenomenon behind the paper's
  // Fig. 7 discussion (opt-hash wins most on the average metric).
  FakeEstimator estimator({{1, 1000.0}, {2, 1000.0}});
  const std::vector<EvalQuery> queries = {{{1, nullptr}, 1.0},
                                          {{2, nullptr}, 1000.0}};
  const ErrorMetrics metrics = EvaluateEstimator(estimator, queries);
  EXPECT_NEAR(metrics.average_absolute_error, 999.0 / 2.0, 1e-9);
  EXPECT_NEAR(metrics.expected_magnitude_error, 999.0 / 1001.0, 1e-9);
  EXPECT_GT(metrics.average_absolute_error,
            100.0 * metrics.expected_magnitude_error);
}

TEST(EvaluationTest, ZeroTotalFrequencyHandled) {
  FakeEstimator estimator({{1, 3.0}});
  const std::vector<EvalQuery> queries = {{{1, nullptr}, 0.0}};
  const ErrorMetrics metrics = EvaluateEstimator(estimator, queries);
  EXPECT_DOUBLE_EQ(metrics.expected_magnitude_error, 0.0);
  EXPECT_DOUBLE_EQ(metrics.average_absolute_error, 3.0);
}

}  // namespace
}  // namespace opthash::core

// Snapshot rotation: sequence numbering (including resume-after-restart),
// atomic visibility (only complete .bin files, never .tmp), bounded
// retention, item/time triggers, and the FindLatestSnapshot recovery
// probe.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "server/snapshot_rotator.h"

namespace opthash::server {
namespace {

std::string FreshDir(const std::string& stem) {
  // Pid-qualified so reruns never see a previous run's rotated files;
  // the rotator creates the directory itself.
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/rotator_" + stem + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

SnapshotRotator::SaveFn WriteMarker(std::atomic<uint64_t>& saves) {
  return [&saves](const std::string& path) {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << "snapshot " << saves.fetch_add(1) + 1;
    return file.good() ? Status::OK()
                       : Status::Internal("cannot write " + path);
  };
}

TEST(SnapshotRotatorTest, DisabledConfigIsANoOp) {
  RotationConfig config;  // Empty dir.
  std::atomic<uint64_t> saves{0};
  SnapshotRotator rotator(
      config, [] { return uint64_t{0}; }, WriteMarker(saves));
  EXPECT_TRUE(rotator.Start().ok());
  EXPECT_FALSE(rotator.RotateNow().ok());  // FailedPrecondition.
  EXPECT_EQ(saves.load(), 0u);
}

TEST(SnapshotRotatorTest, TriggersWithoutDirRejected) {
  RotationConfig config;
  config.every_items = 10;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SnapshotRotatorTest, RotateNowWritesSequencedFiles) {
  RotationConfig config;
  config.dir = FreshDir("seq");
  std::atomic<uint64_t> saves{0};
  SnapshotRotator rotator(
      config, [] { return uint64_t{0}; }, WriteMarker(saves));
  ASSERT_TRUE(rotator.Start().ok());
  auto first = rotator.RotateNow();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 1u);
  auto second = rotator.RotateNow();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 2u);
  EXPECT_EQ(rotator.rotations(), 2u);
  EXPECT_GE(rotator.LastRotationAgeSeconds(), 0.0);

  auto rotated = SnapshotRotator::ListRotated(config.dir);
  ASSERT_TRUE(rotated.ok());
  ASSERT_EQ(rotated.value().size(), 2u);
  EXPECT_EQ(rotated.value()[0].second, "snapshot-000001.bin");
  EXPECT_EQ(rotated.value()[1].second, "snapshot-000002.bin");

  auto latest = SnapshotRotator::FindLatestSnapshot(config.dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value(), config.dir + "/snapshot-000002.bin");
}

TEST(SnapshotRotatorTest, FindLatestOnMissingOrEmptyDirIsNotFound) {
  EXPECT_EQ(
      SnapshotRotator::FindLatestSnapshot("/definitely/not/here").status()
          .code(),
      StatusCode::kNotFound);
  RotationConfig config;
  config.dir = FreshDir("empty");
  std::atomic<uint64_t> saves{0};
  SnapshotRotator rotator(
      config, [] { return uint64_t{0}; }, WriteMarker(saves));
  ASSERT_TRUE(rotator.Start().ok());  // Creates the (empty) directory.
  EXPECT_EQ(SnapshotRotator::FindLatestSnapshot(config.dir).status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotRotatorTest, SequenceResumesAcrossRestart) {
  RotationConfig config;
  config.dir = FreshDir("resume");
  std::atomic<uint64_t> saves{0};
  {
    SnapshotRotator rotator(
        config, [] { return uint64_t{0}; }, WriteMarker(saves));
    ASSERT_TRUE(rotator.Start().ok());
    ASSERT_TRUE(rotator.RotateNow().ok());
    ASSERT_TRUE(rotator.RotateNow().ok());
  }
  // A "restarted daemon": a new rotator over the same directory must not
  // reuse live sequence numbers.
  SnapshotRotator restarted(
      config, [] { return uint64_t{0}; }, WriteMarker(saves));
  ASSERT_TRUE(restarted.Start().ok());
  auto next = restarted.RotateNow();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), 3u);
}

TEST(SnapshotRotatorTest, RetentionPrunesOldest) {
  RotationConfig config;
  config.dir = FreshDir("keep");
  config.keep = 2;
  std::atomic<uint64_t> saves{0};
  SnapshotRotator rotator(
      config, [] { return uint64_t{0}; }, WriteMarker(saves));
  ASSERT_TRUE(rotator.Start().ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(rotator.RotateNow().ok());
  auto rotated = SnapshotRotator::ListRotated(config.dir);
  ASSERT_TRUE(rotated.ok());
  ASSERT_EQ(rotated.value().size(), 2u);
  EXPECT_EQ(rotated.value()[0].first, 4u);
  EXPECT_EQ(rotated.value()[1].first, 5u);
}

TEST(SnapshotRotatorTest, FailedSaveLeavesNoVisibleSnapshot) {
  RotationConfig config;
  config.dir = FreshDir("fail");
  SnapshotRotator rotator(
      config, [] { return uint64_t{0}; },
      [](const std::string&) { return Status::Internal("disk on fire"); });
  ASSERT_TRUE(rotator.Start().ok());
  EXPECT_FALSE(rotator.RotateNow().ok());
  EXPECT_EQ(rotator.rotations(), 0u);
  // The failure must be COUNTED, not just returned: background-trigger
  // rotations have no caller to see the Status, so the counter is the
  // only durable evidence checkpointing broke.
  EXPECT_EQ(rotator.failed_rotations(), 1u);
  EXPECT_FALSE(rotator.RotateNow().ok());
  EXPECT_EQ(rotator.failed_rotations(), 2u);
  EXPECT_LT(rotator.LastRotationAgeSeconds(), 0.0);
  EXPECT_FALSE(SnapshotRotator::FindLatestSnapshot(config.dir).ok());
}

TEST(SnapshotRotatorTest, ItemTriggerRotatesInBackground) {
  RotationConfig config;
  config.dir = FreshDir("items");
  config.every_items = 100;
  config.poll_seconds = 0.005;
  std::atomic<uint64_t> items{0};
  std::atomic<uint64_t> saves{0};
  SnapshotRotator rotator(
      config, [&items] { return items.load(); }, WriteMarker(saves));
  ASSERT_TRUE(rotator.Start().ok());
  // Below the threshold: nothing may rotate.
  items.store(99);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(rotator.rotations(), 0u);
  // Crossing it: the poller must pick it up.
  items.store(150);
  for (int i = 0; i < 400 && rotator.rotations() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(rotator.rotations(), 1u);
  // The trigger re-arms relative to the rotation point (150), so +99
  // more items stay below the next threshold.
  items.store(249);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(rotator.rotations(), 1u);
}

TEST(SnapshotRotatorTest, TimeTriggerRotatesInBackground) {
  RotationConfig config;
  config.dir = FreshDir("time");
  config.every_seconds = 0.02;
  config.poll_seconds = 0.005;
  std::atomic<uint64_t> saves{0};
  SnapshotRotator rotator(
      config, [] { return uint64_t{0}; }, WriteMarker(saves));
  ASSERT_TRUE(rotator.Start().ok());
  for (int i = 0; i < 400 && rotator.rotations() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(rotator.rotations(), 2u);
}

TEST(SnapshotRotatorTest, TempFilesAreNeverListed) {
  RotationConfig config;
  config.dir = FreshDir("tmpfiles");
  std::atomic<uint64_t> saves{0};
  SnapshotRotator rotator(
      config, [] { return uint64_t{0}; }, WriteMarker(saves));
  ASSERT_TRUE(rotator.Start().ok());
  ASSERT_TRUE(rotator.RotateNow().ok());
  // Simulate a crash mid-write: a stale .tmp must be invisible to both
  // the listing and the recovery probe.
  std::ofstream(config.dir + "/snapshot-000099.bin.tmp") << "torn";
  std::ofstream(config.dir + "/unrelated.txt") << "noise";
  auto rotated = SnapshotRotator::ListRotated(config.dir);
  ASSERT_TRUE(rotated.ok());
  ASSERT_EQ(rotated.value().size(), 1u);
  auto latest = SnapshotRotator::FindLatestSnapshot(config.dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value(), config.dir + "/snapshot-000001.bin");
}

}  // namespace
}  // namespace opthash::server

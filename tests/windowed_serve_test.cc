// Windowed serving tests: a real Server on real sockets serving a
// window-partitioned sketch ring — windowed served answers equal a local
// ring fed the same stream, the kWindowStats verb reports ring position
// (and fails cleanly on lifetime models without killing the session),
// checkpoint + crash + restore resumes MID-window to answers identical to
// an unbroken run, both transports agree byte-for-byte, and the
// window-stats wire coding round-trips and rejects garbage.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "io/sketch_snapshot.h"
#include "io/windowed_snapshot.h"
#include "server/client.h"
#include "server/server.h"
#include "server/snapshot_rotator.h"
#include "stream/sharded_ingest.h"
#include "sketch/count_min_sketch.h"
#include "sketch/misra_gries.h"
#include "sketch/windowed_sketch.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace opthash::server {
namespace {

std::string FreshSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/opthash_wsrv_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::string FreshDir(const std::string& stem) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/wserve_" + stem + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

std::vector<uint64_t> ZipfishKeys(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto r = static_cast<uint64_t>(rng.NextUint64());
    keys.push_back(r % ((r % 5 == 0) ? 5000 : 60));
  }
  return keys;
}

// The served geometry every cms test uses; local reference rings must
// match it exactly.
FreshSketchSpec WindowedCmsSpec(size_t windows = 4,
                                uint64_t window_items = 1000,
                                double decay = 1.0) {
  FreshSketchSpec spec;
  spec.kind = "cms";
  spec.width = 512;
  spec.depth = 4;
  spec.seed = 3;
  spec.windows = windows;
  spec.window_items = window_items;
  spec.decay = decay;
  return spec;
}

std::unique_ptr<ServedModel> MustCreate(const FreshSketchSpec& spec) {
  auto model = CreateServedSketch(spec);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

sketch::WindowedSketch<sketch::CountMinSketch> LocalCmsRing(
    const FreshSketchSpec& spec) {
  sketch::CountMinSketch proto(spec.width, spec.depth, spec.seed);
  auto ring = sketch::WindowedSketch<sketch::CountMinSketch>::Create(
      proto, spec.windows, spec.window_items, spec.decay);
  EXPECT_TRUE(ring.ok()) << ring.status().ToString();
  return std::move(ring).value();
}

class RunningServer {
 public:
  explicit RunningServer(std::unique_ptr<ServedModel> model,
                         RotationConfig rotation = {}) {
    config_.socket_path = FreshSocketPath();
    config_.rotation = std::move(rotation);
    server_ = std::make_unique<Server>(config_, std::move(model));
  }

  ~RunningServer() { server_->RequestShutdown(); }

  Status Start() { return server_->Start(); }
  const std::string& socket() const { return config_.socket_path; }
  Server& server() { return *server_; }

  Client MustConnect() {
    auto client = Client::Connect(socket());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

 private:
  ServerConfig config_;
  std::unique_ptr<Server> server_;
};

TEST(WindowedServeTest, CreateServedSketchValidatesWindowFlags) {
  // --window/--decay without --windows is a configuration error...
  FreshSketchSpec spec = WindowedCmsSpec(/*windows=*/0, /*window_items=*/50);
  auto no_ring = CreateServedSketch(spec);
  ASSERT_FALSE(no_ring.ok());
  EXPECT_NE(no_ring.status().ToString().find("--windows"), std::string::npos);
  // ...as is a windowed spec that never advances...
  auto no_items = CreateServedSketch(WindowedCmsSpec(4, /*window_items=*/0));
  ASSERT_FALSE(no_items.ok());
  EXPECT_NE(no_items.status().ToString().find("--window"), std::string::npos);
  // ...or a decay outside (0, 1].
  auto bad_decay = CreateServedSketch(WindowedCmsSpec(4, 50, /*decay=*/1.5));
  EXPECT_FALSE(bad_decay.ok());
}

TEST(WindowedServeTest, WindowedModelReportsKindAndWindowStats) {
  auto model = MustCreate(WindowedCmsSpec(3, 100));
  EXPECT_STREQ(model->Kind(), "windowed-count-min");
  EXPECT_FALSE(model->ReadOnly());
  EXPECT_TRUE(model->SupportsWindowStats());
  EXPECT_FALSE(model->SupportsTopK());  // Plain cms stores no ids.

  stream::ShardedIngestConfig one_thread;
  const std::vector<uint64_t> keys(250, 7);
  ASSERT_TRUE(
      model->Ingest(Span<const uint64_t>(keys.data(), keys.size()), one_thread)
          .ok());
  WindowStatsSnapshot stats;
  ASSERT_TRUE(model->WindowStats(stats).ok());
  EXPECT_EQ(stats.window_items, 100u);
  EXPECT_EQ(stats.window_sequence, 2u);
  EXPECT_EQ(stats.items_in_current_window, 50u);
  EXPECT_EQ(stats.decay, 1.0);
  ASSERT_EQ(stats.window_counts.size(), 3u);
  // Oldest first; the ring holds the last two full windows + the open one.
  EXPECT_EQ(stats.window_counts[0], 100u);
  EXPECT_EQ(stats.window_counts[1], 100u);
  EXPECT_EQ(stats.window_counts[2], 50u);
  // TotalItems counts LIVE arrivals only — that is what windowing means.
  EXPECT_EQ(model->TotalItems(), 250u);
}

TEST(WindowedServeTest, LifetimeModelRejectsWindowStatsWithGuidance) {
  FreshSketchSpec plain;
  plain.kind = "cms";
  auto model = MustCreate(plain);
  WindowStatsSnapshot stats;
  const Status status = model->WindowStats(stats);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // The error tells the operator how to get a windowed daemon.
  EXPECT_NE(status.ToString().find("--windows"), std::string::npos);
}

TEST(WindowedServeTest, ServedWindowStatsMatchesLocalRingAndSessionSurvives) {
  const FreshSketchSpec spec = WindowedCmsSpec(4, 1000);
  RunningServer running(MustCreate(spec));
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();

  const std::vector<uint64_t> keys = ZipfishKeys(3456, 31);
  ASSERT_TRUE(client.Ingest(keys).ok());

  auto local = LocalCmsRing(spec);
  local.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  auto served = client.WindowStats();
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served.value().window_items, 1000u);
  EXPECT_EQ(served.value().window_sequence, local.window_sequence());
  EXPECT_EQ(served.value().items_in_current_window,
            local.items_in_current_window());
  EXPECT_EQ(served.value().window_counts, local.WindowCountsOldestFirst());

  // Served estimates equal the local ring's, key for key.
  std::vector<uint64_t> queries;
  for (uint64_t key = 0; key < 200; ++key) queries.push_back(key);
  std::vector<double> answers;
  ASSERT_TRUE(client.Query(queries, answers).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(answers[i], local.Estimate(queries[i])) << queries[i];
  }
}

TEST(WindowedServeTest, WindowStatsOnLifetimeServerIsSemanticError) {
  FreshSketchSpec plain;
  plain.kind = "cms";
  RunningServer running(MustCreate(plain));
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();

  auto stats = client.WindowStats();
  ASSERT_FALSE(stats.ok());
  // The remote Status came back as a kError frame ("server: " prefix)...
  EXPECT_NE(stats.status().ToString().find("server:"), std::string::npos);
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
  // ...and the session survived, exactly like an unsupported top-k.
  EXPECT_TRUE(client.Ping().ok());
}

TEST(WindowedServeTest, DecayedServedEstimatesMatchLocalRing) {
  const FreshSketchSpec spec = WindowedCmsSpec(3, 500, /*decay=*/0.5);
  RunningServer running(MustCreate(spec));
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();

  const std::vector<uint64_t> keys = ZipfishKeys(1733, 37);
  ASSERT_TRUE(client.Ingest(keys).ok());
  auto local = LocalCmsRing(spec);
  local.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  auto served_stats = client.WindowStats();
  ASSERT_TRUE(served_stats.ok());
  EXPECT_EQ(served_stats.value().decay, 0.5);

  std::vector<uint64_t> queries;
  for (uint64_t key = 0; key < 120; ++key) queries.push_back(key);
  std::vector<double> answers;
  ASSERT_TRUE(client.Query(queries, answers).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    // Bit-identical: the decay weights are iterated products on both
    // sides, never std::pow.
    EXPECT_EQ(answers[i], local.Estimate(queries[i])) << queries[i];
  }
}

TEST(WindowedServeTest, CheckpointRestartResumesMidWindowExactly) {
  // Ingest part A ending MID-window, snapshot, crash (no clean shutdown),
  // restore from the rotated snapshot, ingest part B: every answer and
  // every ring coordinate must equal one unbroken windowed ingestion.
  const FreshSketchSpec spec = WindowedCmsSpec(4, 1000);
  const std::vector<uint64_t> keys = ZipfishKeys(7350, 41);
  const size_t part_a = 3456;  // 3456 % 1000 != 0: mid-window on purpose.
  RotationConfig rotation;
  rotation.dir = FreshDir("resume");

  {
    RunningServer running(MustCreate(spec), rotation);
    ASSERT_TRUE(running.Start().ok());
    Client client = running.MustConnect();
    ASSERT_TRUE(
        client.Ingest(Span<const uint64_t>(keys.data(), part_a)).ok());
    auto sequence = client.Snapshot();
    ASSERT_TRUE(sequence.ok()) << sequence.status().ToString();
    // Torn down with state only in the rotated file, like a kill -9.
  }

  auto latest = SnapshotRotator::FindLatestSnapshot(rotation.dir);
  ASSERT_TRUE(latest.ok());
  auto opened = OpenServedModel(latest.value(), /*use_mmap=*/false);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_STREQ(opened.value().model->Kind(), "windowed-count-min");
  RunningServer resumed(std::move(opened.value().model), rotation);
  ASSERT_TRUE(resumed.Start().ok());
  Client client = resumed.MustConnect();
  ASSERT_TRUE(client
                  .Ingest(Span<const uint64_t>(keys.data() + part_a,
                                               keys.size() - part_a))
                  .ok());

  // The unbroken twin: one local ring fed the whole stream.
  auto unbroken = LocalCmsRing(spec);
  unbroken.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  auto stats = client.WindowStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().window_sequence, unbroken.window_sequence());
  EXPECT_EQ(stats.value().items_in_current_window,
            unbroken.items_in_current_window());
  EXPECT_EQ(stats.value().window_counts, unbroken.WindowCountsOldestFirst());

  std::vector<uint64_t> queries;
  for (uint64_t key = 0; key < 200; ++key) queries.push_back(key);
  std::vector<double> answers;
  ASSERT_TRUE(client.Query(queries, answers).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(answers[i], unbroken.Estimate(queries[i])) << queries[i];
  }
}

TEST(WindowedServeTest, TcpServesWindowStatsByteIdenticalToUnix) {
  const FreshSketchSpec spec = WindowedCmsSpec(3, 700);
  ServerConfig config;
  config.socket_path = FreshSocketPath();
  config.listen_address = "127.0.0.1:0";  // Kernel-picked port.
  Server server(config, MustCreate(spec));
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.tcp_port(), 0);

  auto unix_client = Client::Connect(config.socket_path);
  ASSERT_TRUE(unix_client.ok());
  auto tcp_client =
      Client::Connect("127.0.0.1:" + std::to_string(server.tcp_port()));
  ASSERT_TRUE(tcp_client.ok());

  const std::vector<uint64_t> keys = ZipfishKeys(2100, 43);
  ASSERT_TRUE(unix_client.value().Ingest(keys).ok());

  auto via_unix = unix_client.value().WindowStats();
  auto via_tcp = tcp_client.value().WindowStats();
  ASSERT_TRUE(via_unix.ok());
  ASSERT_TRUE(via_tcp.ok());
  EXPECT_EQ(via_unix.value().window_sequence, via_tcp.value().window_sequence);
  EXPECT_EQ(via_unix.value().items_in_current_window,
            via_tcp.value().items_in_current_window);
  EXPECT_EQ(via_unix.value().window_counts, via_tcp.value().window_counts);

  std::vector<uint64_t> queries;
  for (uint64_t key = 0; key < 100; ++key) queries.push_back(key);
  std::vector<double> unix_answers;
  std::vector<double> tcp_answers;
  ASSERT_TRUE(unix_client.value().Query(queries, unix_answers).ok());
  ASSERT_TRUE(tcp_client.value().Query(queries, tcp_answers).ok());
  EXPECT_EQ(unix_answers, tcp_answers);
  server.RequestShutdown();
}

TEST(WindowedServeTest, WindowedTopKServedMatchesLocalRing) {
  FreshSketchSpec spec;
  spec.kind = "mg";
  spec.capacity = 64;
  spec.windows = 3;
  spec.window_items = 400;
  RunningServer running(MustCreate(spec));
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();

  Rng rng(47);
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < 1350; ++i) keys.push_back(rng.NextBounded(24));
  ASSERT_TRUE(client.Ingest(keys).ok());

  sketch::MisraGries proto(spec.capacity);
  auto local = sketch::WindowedSketch<sketch::MisraGries>::Create(
                   proto, spec.windows, spec.window_items)
                   .value();
  local.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  std::vector<sketch::HeavyHitter> served;
  ASSERT_TRUE(client.TopK(24, served).ok());
  const auto expected = local.TopK(24);
  ASSERT_EQ(served.size(), expected.size());
  for (size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i], expected[i]) << i;
  }
}

TEST(WindowedServeTest, MetricsExportFullLatencyHistogram) {
  RunningServer running(MustCreate(WindowedCmsSpec(2, 100)));
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();

  // One query + one window-stats request populate the counters.
  std::vector<uint64_t> queries{1, 2, 3};
  std::vector<double> answers;
  ASSERT_TRUE(client.Query(queries, answers).ok());
  ASSERT_TRUE(client.WindowStats().ok());

  std::string text;
  ASSERT_TRUE(client.Metrics(text).ok());
  // The summary family from PR 7 is still there...
  EXPECT_NE(text.find("# TYPE opthash_query_latency_micros summary"),
            std::string::npos);
  // ...and the new full histogram family exposes raw buckets.
  EXPECT_NE(
      text.find("# TYPE opthash_query_latency_histogram_micros histogram"),
      std::string::npos);
  EXPECT_NE(text.find("opthash_query_latency_histogram_micros_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(text.find("opthash_query_latency_histogram_micros_bucket"
                      "{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("opthash_query_latency_histogram_micros_sum"),
            std::string::npos);
  EXPECT_NE(text.find("opthash_query_latency_histogram_micros_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("opthash_window_stats_requests_total 1"),
            std::string::npos);
}

TEST(WindowedServeTest, ScopedWindowStatsToUnknownModelIdIsNotFound) {
  RunningServer running(MustCreate(WindowedCmsSpec(2, 100)));
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();
  client.set_model_id(7);
  auto stats = client.WindowStats();
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
  // Back to the default model, the same session answers.
  client.set_model_id(0);
  EXPECT_TRUE(client.WindowStats().ok());
}

TEST(WindowedServeTest, WindowStatsReplyRoundTripsOnTheWire) {
  WindowStatsSnapshot stats;
  stats.window_items = 1000;
  stats.window_sequence = 42;
  stats.items_in_current_window = 250;
  stats.decay = 0.75;
  stats.window_counts = {1000, 1000, 900, 250};

  std::vector<uint8_t> frame;
  EncodeWindowStatsReply(stats, frame);
  // Strip the length prefix to get the payload the decoder sees.
  Span<const uint8_t> payload(frame.data() + kFrameHeaderSize,
                              frame.size() - kFrameHeaderSize);
  auto decoded = DecodeWindowStatsReply(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().window_items, stats.window_items);
  EXPECT_EQ(decoded.value().window_sequence, stats.window_sequence);
  EXPECT_EQ(decoded.value().items_in_current_window,
            stats.items_in_current_window);
  EXPECT_EQ(decoded.value().decay, stats.decay);
  EXPECT_EQ(decoded.value().window_counts, stats.window_counts);
}

TEST(WindowedServeTest, WindowStatsReplyDecoderRejectsGarbage) {
  WindowStatsSnapshot stats;
  stats.window_counts = {5, 6, 7};
  std::vector<uint8_t> frame;
  EncodeWindowStatsReply(stats, frame);
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderSize, frame.end());

  {  // Truncated body.
    auto decoded = DecodeWindowStatsReply(
        Span<const uint8_t>(payload.data(), payload.size() - 9));
    EXPECT_FALSE(decoded.ok());
  }
  {  // Declared window count disagrees with the body size.
    std::vector<uint8_t> lying = payload;
    lying[1 + 24 + 8] = 200;  // The u32 count field's low byte.
    auto decoded =
        DecodeWindowStatsReply(Span<const uint8_t>(lying.data(), lying.size()));
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().ToString().find("declares"), std::string::npos);
  }
  {  // Wrong message type entirely.
    std::vector<uint8_t> wrong = payload;
    wrong[0] = static_cast<uint8_t>(MessageType::kPong);
    auto decoded =
        DecodeWindowStatsReply(Span<const uint8_t>(wrong.data(), wrong.size()));
    EXPECT_FALSE(decoded.ok());
  }
  {  // Empty payload.
    auto decoded = DecodeWindowStatsReply(Span<const uint8_t>());
    EXPECT_FALSE(decoded.ok());
  }
}

TEST(WindowedServeTest, WindowedSnapshotCrossLoadsFailWithReadableStatus) {
  // A windowed checkpoint and a plain one, side by side.
  sketch::CountMinSketch proto(64, 2, 1);
  auto ring = sketch::WindowedSketch<sketch::CountMinSketch>::Create(
                  proto, 2, 10)
                  .value();
  ring.Update(5);
  const std::string windowed_path =
      ::testing::TempDir() + "/wserve_xload_windowed.bin";
  ASSERT_TRUE(io::SaveWindowedSketchSnapshot(windowed_path, ring).ok());
  sketch::CountMinSketch plain(64, 2, 1);
  plain.Update(5);
  const std::string plain_path =
      ::testing::TempDir() + "/wserve_xload_plain.bin";
  ASSERT_TRUE(io::SaveSketchSnapshot(plain_path, plain).ok());

  // Loading across kinds fails with a Status naming the missing section.
  auto as_plain = io::LoadSketchSnapshot<sketch::CountMinSketch>(windowed_path);
  ASSERT_FALSE(as_plain.ok());
  EXPECT_NE(as_plain.status().ToString().find("count-min"), std::string::npos);
  auto as_windowed =
      io::LoadWindowedSketchSnapshot<sketch::CountMinSketch>(plain_path);
  ASSERT_FALSE(as_windowed.ok());
  EXPECT_NE(as_windowed.status().ToString().find("windowed-sketch"),
            std::string::npos);

  // The serving loader dispatches BOTH correctly — old artifacts keep
  // opening in a windowed build, windowed ones serve as rings.
  auto plain_model = OpenServedModel(plain_path, /*use_mmap=*/false);
  ASSERT_TRUE(plain_model.ok());
  EXPECT_STREQ(plain_model.value().model->Kind(), "count-min");
  auto ring_model = OpenServedModel(windowed_path, /*use_mmap=*/false);
  ASSERT_TRUE(ring_model.ok());
  EXPECT_STREQ(ring_model.value().model->Kind(), "windowed-count-min");
  EXPECT_TRUE(ring_model.value().model->SupportsWindowStats());
}

}  // namespace
}  // namespace opthash::server

#include "sketch/space_saving.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::sketch {
namespace {

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving summary(10);
  for (int rep = 0; rep < 5; ++rep) summary.Update(1);
  for (int rep = 0; rep < 3; ++rep) summary.Update(2);
  EXPECT_EQ(summary.Estimate(1), 5u);
  EXPECT_EQ(summary.Estimate(2), 3u);
  EXPECT_EQ(summary.Estimate(42), 0u);
  EXPECT_EQ(summary.ErrorOf(1), 0u);
}

TEST(SpaceSavingTest, NeverUnderestimatesTrackedKeys) {
  SpaceSaving summary(25);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(1);
  ZipfSampler zipf(400, 1.1);
  for (int t = 0; t < 40000; ++t) {
    const uint64_t key = zipf.Sample(rng);
    summary.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(summary.Estimate(key), count) << "key " << key;
  }
}

TEST(SpaceSavingTest, ErrorFieldBoundsOverestimation) {
  SpaceSaving summary(20);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(2);
  ZipfSampler zipf(300, 1.0);
  for (int t = 0; t < 30000; ++t) {
    const uint64_t key = zipf.Sample(rng);
    summary.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    if (!summary.IsTracked(key)) continue;
    // count >= counter - error  (the guaranteed part).
    EXPECT_GE(count, summary.Estimate(key) - summary.ErrorOf(key));
  }
}

TEST(SpaceSavingTest, DeterministicErrorBound) {
  SpaceSaving summary(15);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(3);
  ZipfSampler zipf(200, 1.0);
  for (int t = 0; t < 20000; ++t) {
    const uint64_t key = zipf.Sample(rng);
    summary.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_LE(static_cast<double>(summary.Estimate(key)) -
                  static_cast<double>(count),
              summary.ErrorBound() + 1e-9);
  }
}

TEST(SpaceSavingTest, TrueHeavyHittersAlwaysTracked) {
  SpaceSaving summary(10);
  Rng rng(4);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (int t = 0; t < 20000; ++t) {
    const uint64_t key =
        rng.NextBernoulli(0.4) ? 12345 : 100 + rng.NextBounded(500);
    summary.Update(key);
    ++truth[key];
  }
  // 12345 holds ~40% of the stream >> total/capacity = 10%.
  EXPECT_TRUE(summary.IsTracked(12345));
}

TEST(SpaceSavingTest, CapacityIsExactOnceWarm) {
  SpaceSaving summary(7);
  Rng rng(5);
  for (int t = 0; t < 5000; ++t) {
    summary.Update(rng.NextBounded(300));
    EXPECT_LE(summary.size(), 7u);
  }
  EXPECT_EQ(summary.size(), 7u);
}

TEST(SpaceSavingTest, GuaranteedHeavyFiltersByLowerBound) {
  SpaceSaving summary(5);
  for (int rep = 0; rep < 100; ++rep) summary.Update(1);
  for (int rep = 0; rep < 60; ++rep) summary.Update(2);
  summary.Update(3);
  summary.Update(4);
  summary.Update(5);
  summary.Update(6);  // Evicts one singleton; error 1.
  const auto heavy = summary.GuaranteedHeavy(50);
  ASSERT_EQ(heavy.size(), 2u);
  EXPECT_EQ(heavy[0].first, 1u);
  EXPECT_EQ(heavy[1].first, 2u);
}

TEST(SpaceSavingTest, MemoryAccounting) {
  SpaceSaving summary(40);
  EXPECT_EQ(summary.MemoryBuckets(), 120u);
}

class SpaceSavingCapacitySweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SpaceSavingCapacitySweep, OverestimateBoundAcrossCapacities) {
  SpaceSaving summary(GetParam());
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(6);
  ZipfSampler zipf(250, 1.2);
  for (int t = 0; t < 15000; ++t) {
    const uint64_t key = zipf.Sample(rng);
    summary.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(summary.Estimate(key), count);
    EXPECT_LE(static_cast<double>(summary.Estimate(key) - count),
              summary.ErrorBound() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpaceSavingCapacitySweep,
                         ::testing::Values(1, 3, 10, 50, 200));

}  // namespace
}  // namespace opthash::sketch

#include "ml/random_forest.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/metrics.h"

namespace opthash::ml {
namespace {

Dataset NoisyBlobs(size_t per_class, size_t num_classes, double noise,
                   uint64_t seed) {
  Rng rng(seed);
  Dataset data(4);
  for (size_t c = 0; c < num_classes; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      const double base = static_cast<double>(c) * 3.0;
      data.Add({base + noise * rng.NextGaussian(),
                base + noise * rng.NextGaussian(), rng.NextGaussian(),
                rng.NextGaussian()},
               static_cast<int>(c));
    }
  }
  return data;
}

TEST(RandomForestTest, FitsNoisyMulticlassData) {
  const Dataset data = NoisyBlobs(60, 4, 0.6, 1);
  RandomForestConfig config;
  config.num_trees = 20;
  RandomForest forest(config);
  forest.Fit(data);
  EXPECT_GE(Accuracy(data.labels(), forest.PredictBatch(data)), 0.97);
  EXPECT_EQ(forest.NumTrees(), 20u);
}

TEST(RandomForestTest, MoreTreesMoreStable) {
  // Prediction disagreement between two forests with different seeds should
  // shrink as the ensemble grows.
  const Dataset data = NoisyBlobs(50, 3, 1.2, 2);
  auto disagreement = [&](size_t trees) {
    RandomForestConfig c1;
    c1.num_trees = trees;
    c1.seed = 100;
    RandomForestConfig c2 = c1;
    c2.seed = 200;
    RandomForest f1(c1);
    RandomForest f2(c2);
    f1.Fit(data);
    f2.Fit(data);
    size_t differences = 0;
    for (size_t i = 0; i < data.NumExamples(); ++i) {
      if (f1.Predict(data.Features(i)) != f2.Predict(data.Features(i))) {
        ++differences;
      }
    }
    return differences;
  };
  EXPECT_LE(disagreement(40), disagreement(1) + 2);
}

TEST(RandomForestTest, FeatureImportancesFavorInformativeFeatures) {
  const Dataset data = NoisyBlobs(80, 3, 0.5, 3);
  RandomForestConfig config;
  config.num_trees = 15;
  RandomForest forest(config);
  forest.Fit(data);
  const std::vector<double> importances = forest.FeatureImportances();
  ASSERT_EQ(importances.size(), 4u);
  // Features 0 and 1 encode the class; 2 and 3 are pure noise.
  EXPECT_GT(importances[0] + importances[1],
            importances[2] + importances[3]);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  const Dataset data = NoisyBlobs(30, 3, 0.8, 4);
  RandomForestConfig config;
  config.num_trees = 8;
  config.seed = 77;
  RandomForest a(config);
  RandomForest b(config);
  a.Fit(data);
  b.Fit(data);
  for (size_t i = 0; i < data.NumExamples(); ++i) {
    EXPECT_EQ(a.Predict(data.Features(i)), b.Predict(data.Features(i)));
  }
}

TEST(RandomForestTest, SingleTreeForestStillWorks) {
  const Dataset data = NoisyBlobs(40, 2, 0.4, 5);
  RandomForestConfig config;
  config.num_trees = 1;
  RandomForest forest(config);
  forest.Fit(data);
  EXPECT_GE(Accuracy(data.labels(), forest.PredictBatch(data)), 0.9);
}

TEST(RandomForestTest, MaxFeaturesDefaultsToSqrt) {
  const Dataset data = NoisyBlobs(30, 2, 0.5, 6);
  RandomForestConfig config;
  config.max_features = 0;  // floor(sqrt(4)) = 2.
  RandomForest forest(config);
  forest.Fit(data);  // Smoke: trains without error, predicts valid labels.
  const int label = forest.Predict(data.Features(0));
  EXPECT_GE(label, 0);
  EXPECT_LT(label, 2);
}

TEST(RandomForestTest, NameIsRf) {
  RandomForest forest;
  EXPECT_STREQ(forest.Name(), "rf");
}

}  // namespace
}  // namespace opthash::ml

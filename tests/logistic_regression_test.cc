#include "ml/logistic_regression.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/metrics.h"

namespace opthash::ml {
namespace {

Dataset LinearlySeparableBlobs(size_t per_class, size_t num_classes,
                               uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  for (size_t c = 0; c < num_classes; ++c) {
    const double cx = 6.0 * std::cos(2.0 * M_PI * static_cast<double>(c) /
                                     static_cast<double>(num_classes));
    const double cy = 6.0 * std::sin(2.0 * M_PI * static_cast<double>(c) /
                                     static_cast<double>(num_classes));
    for (size_t i = 0; i < per_class; ++i) {
      data.Add({cx + 0.5 * rng.NextGaussian(), cy + 0.5 * rng.NextGaussian()},
               static_cast<int>(c));
    }
  }
  return data;
}

TEST(LogisticRegressionTest, FitsBinarySeparableData) {
  const Dataset data = LinearlySeparableBlobs(50, 2, 1);
  LogisticRegression model;
  model.Fit(data);
  const std::vector<int> predictions = model.PredictBatch(data);
  EXPECT_GE(Accuracy(data.labels(), predictions), 0.99);
}

TEST(LogisticRegressionTest, FitsMulticlassSeparableData) {
  const Dataset data = LinearlySeparableBlobs(40, 5, 2);
  LogisticRegression model;
  model.Fit(data);
  const std::vector<int> predictions = model.PredictBatch(data);
  EXPECT_GE(Accuracy(data.labels(), predictions), 0.97);
}

TEST(LogisticRegressionTest, ProbabilitiesSumToOne) {
  const Dataset data = LinearlySeparableBlobs(30, 3, 3);
  LogisticRegression model;
  model.Fit(data);
  const std::vector<double> probs = model.PredictProba({1.0, -2.0});
  ASSERT_EQ(probs.size(), 3u);
  double total = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LogisticRegressionTest, LossDecreasesDuringTraining) {
  const Dataset data = LinearlySeparableBlobs(40, 3, 4);
  LogisticRegressionConfig one_iter;
  one_iter.max_iters = 1;
  LogisticRegression barely_trained(one_iter);
  barely_trained.Fit(data);

  LogisticRegressionConfig full;
  full.max_iters = 200;
  LogisticRegression trained(full);
  trained.Fit(data);
  EXPECT_LT(trained.Loss(data), barely_trained.Loss(data));
}

TEST(LogisticRegressionTest, StrongerRidgeShrinksConfidence) {
  const Dataset data = LinearlySeparableBlobs(40, 2, 5);
  LogisticRegressionConfig weak;
  weak.l2 = 1e-6;
  LogisticRegressionConfig strong;
  strong.l2 = 10.0;
  LogisticRegression weak_model(weak);
  LogisticRegression strong_model(strong);
  weak_model.Fit(data);
  strong_model.Fit(data);
  // On a confidently classified point, heavy regularization pushes the
  // probability towards uniform.
  const double weak_p = weak_model.PredictProba(data.Features(0))[0];
  const double strong_p = strong_model.PredictProba(data.Features(0))[0];
  const double weak_conf = std::abs(weak_p - 0.5);
  const double strong_conf = std::abs(strong_p - 0.5);
  EXPECT_LT(strong_conf, weak_conf);
}

TEST(LogisticRegressionTest, HandlesConstantFeatures) {
  Dataset data(3);
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    const double x = rng.NextGaussian();
    // Second feature is constant; third is informative.
    data.Add({x, 1.0, x > 0 ? 2.0 : -2.0}, x > 0 ? 1 : 0);
  }
  LogisticRegression model;
  model.Fit(data);
  const std::vector<int> predictions = model.PredictBatch(data);
  EXPECT_GE(Accuracy(data.labels(), predictions), 0.99);
}

TEST(LogisticRegressionTest, SingleClassDegenerateCase) {
  Dataset data(2);
  data.Add({1.0, 2.0}, 0);
  data.Add({2.0, 1.0}, 0);
  LogisticRegression model;
  model.Fit(data);
  EXPECT_EQ(model.Predict({0.0, 0.0}), 0);
}

TEST(LogisticRegressionTest, DeterministicAcrossRuns) {
  const Dataset data = LinearlySeparableBlobs(30, 3, 7);
  LogisticRegression a;
  LogisticRegression b;
  a.Fit(data);
  b.Fit(data);
  for (size_t i = 0; i < data.NumExamples(); ++i) {
    EXPECT_EQ(a.Predict(data.Features(i)), b.Predict(data.Features(i)));
  }
}

TEST(LogisticRegressionTest, NameIsLogreg) {
  LogisticRegression model;
  EXPECT_STREQ(model.Name(), "logreg");
}

}  // namespace
}  // namespace opthash::ml

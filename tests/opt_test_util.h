#ifndef OPTHASH_TESTS_OPT_TEST_UTIL_H_
#define OPTHASH_TESTS_OPT_TEST_UTIL_H_

#include <limits>
#include <vector>

#include "common/random.h"
#include "opt/objective.h"
#include "opt/problem.h"

namespace opthash::opt::testutil {

/// Builds a random problem instance with integer-ish frequencies in
/// [0, max_freq) and Gaussian features.
inline HashingProblem RandomProblem(size_t n, size_t b, double lambda,
                                    size_t feature_dim, uint64_t seed,
                                    double max_freq = 50.0) {
  Rng rng(seed);
  HashingProblem problem;
  problem.num_buckets = b;
  problem.lambda = lambda;
  problem.frequencies.resize(n);
  for (double& f : problem.frequencies) {
    f = static_cast<double>(rng.NextBounded(static_cast<uint64_t>(max_freq)));
  }
  problem.features.resize(n);
  for (auto& x : problem.features) {
    x.resize(feature_dim);
    for (double& value : x) value = rng.NextGaussian() * 3.0;
  }
  return problem;
}

/// Exhaustively enumerates all b^n assignments and returns the minimal
/// overall objective. Only usable for tiny instances.
inline double BruteForceOptimum(const HashingProblem& problem,
                                Assignment* best_assignment = nullptr) {
  const size_t n = problem.NumElements();
  const size_t b = problem.num_buckets;
  Assignment assignment(n, 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    const double value = EvaluateObjective(problem, assignment).overall;
    if (value < best) {
      best = value;
      if (best_assignment != nullptr) *best_assignment = assignment;
    }
    // Odometer increment.
    size_t pos = 0;
    while (pos < n) {
      if (static_cast<size_t>(++assignment[pos]) < b) break;
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

}  // namespace opthash::opt::testutil

#endif  // OPTHASH_TESTS_OPT_TEST_UTIL_H_

#include "core/baseline_estimators.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "stream/element.h"

namespace opthash::core {
namespace {

TEST(CountMinEstimatorTest, WidthSplitsBudgetAcrossDepth) {
  CountMinEstimator estimator(120, 4, 1);
  EXPECT_EQ(estimator.sketch().depth(), 4u);
  EXPECT_EQ(estimator.sketch().width(), 30u);
  EXPECT_EQ(estimator.MemoryBuckets(), 120u);
}

TEST(CountMinEstimatorTest, UpdateEstimateRoundTrip) {
  CountMinEstimator estimator(4096, 2, 2);
  const stream::StreamItem item{42, nullptr};
  for (int rep = 0; rep < 7; ++rep) estimator.Update(item);
  EXPECT_GE(estimator.Estimate(item), 7.0);
}

TEST(CountMinEstimatorTest, NeverUnderestimates) {
  CountMinEstimator estimator(64, 2, 3);
  stream::ExactCounter truth;
  Rng rng(4);
  for (int t = 0; t < 10000; ++t) {
    const uint64_t id = rng.NextBounded(400);
    estimator.Update({id, nullptr});
    truth.Add(id);
  }
  for (const auto& [id, count] : truth.counts()) {
    EXPECT_GE(estimator.Estimate({id, nullptr}),
              static_cast<double>(count));
  }
}

TEST(CountSketchEstimatorTest, NonNegativeEstimates) {
  CountSketchEstimator estimator(64, 3, 5);
  Rng rng(6);
  for (int t = 0; t < 5000; ++t) {
    estimator.Update({rng.NextBounded(300), nullptr});
  }
  for (uint64_t id = 0; id < 300; ++id) {
    EXPECT_GE(estimator.Estimate({id, nullptr}), 0.0);
  }
  EXPECT_EQ(estimator.MemoryBuckets(), 63u);  // 3 * (64/3 = 21).
}

TEST(LearnedCmsEstimatorTest, HeavyKeysExact) {
  auto result = LearnedCmsEstimator::Create(100, 2, {7, 8}, 7);
  ASSERT_TRUE(result.ok());
  LearnedCmsEstimator& estimator = result.value();
  for (int rep = 0; rep < 25; ++rep) estimator.Update({7, nullptr});
  EXPECT_DOUBLE_EQ(estimator.Estimate({7, nullptr}), 25.0);
  EXPECT_DOUBLE_EQ(estimator.Estimate({8, nullptr}), 0.0);
  EXPECT_EQ(estimator.MemoryBuckets(), 100u);
}

TEST(LearnedCmsEstimatorTest, CreateRejectsOversizedHeavySet) {
  std::vector<uint64_t> heavy(60);
  for (size_t i = 0; i < heavy.size(); ++i) heavy[i] = i;
  EXPECT_FALSE(LearnedCmsEstimator::Create(100, 2, heavy, 8).ok());
}

TEST(BaselineNamesTest, MatchPaperLabels) {
  CountMinEstimator cms(64, 2, 1);
  CountSketchEstimator cs(64, 2, 1);
  auto lcms = LearnedCmsEstimator::Create(64, 2, {1}, 1);
  ASSERT_TRUE(lcms.ok());
  EXPECT_STREQ(cms.Name(), "count-min");
  EXPECT_STREQ(cs.Name(), "count-sketch");
  EXPECT_STREQ(lcms.value().Name(), "heavy-hitter");
}

TEST(BaselinePolymorphismTest, UsableThroughInterface) {
  std::vector<std::unique_ptr<FrequencyEstimator>> estimators;
  estimators.push_back(std::make_unique<CountMinEstimator>(128, 2, 1));
  estimators.push_back(std::make_unique<CountSketchEstimator>(128, 3, 2));
  for (auto& estimator : estimators) {
    for (int rep = 0; rep < 10; ++rep) estimator->Update({5, nullptr});
    EXPECT_GE(estimator->Estimate({5, nullptr}), 5.0) << estimator->Name();
    EXPECT_GT(estimator->MemoryKb(), 0.0);
  }
}

TEST(MemoryKbTest, FourBytesPerBucket) {
  CountMinEstimator estimator(1000, 1, 1);
  EXPECT_DOUBLE_EQ(estimator.MemoryKb(), 4.0);
}

}  // namespace
}  // namespace opthash::core

#include "opt/objective.h"

#include <cmath>

#include <gtest/gtest.h>

#include "opt/bucket_stats.h"
#include "opt_test_util.h"

namespace opthash::opt {
namespace {

TEST(ObjectiveTest, SingleBucketKnownValue) {
  HashingProblem problem;
  problem.frequencies = {1.0, 3.0, 8.0};
  problem.features = {{0.0}, {1.0}, {2.0}};
  problem.num_buckets = 1;
  problem.lambda = 0.5;
  const ObjectiveValue value = EvaluateObjective(problem, {0, 0, 0});
  // Mean 4: |1-4| + |3-4| + |8-4| = 8.
  EXPECT_DOUBLE_EQ(value.estimation_error, 8.0);
  // Ordered pairs: 2*(1 + 4 + 1) = 12.
  EXPECT_DOUBLE_EQ(value.similarity_error, 12.0);
  EXPECT_DOUBLE_EQ(value.overall, 0.5 * 8.0 + 0.5 * 12.0);
}

TEST(ObjectiveTest, SingletonBucketsAreFree) {
  HashingProblem problem;
  problem.frequencies = {5.0, 9.0};
  problem.features = {{1.0}, {7.0}};
  problem.num_buckets = 2;
  problem.lambda = 0.3;
  const ObjectiveValue value = EvaluateObjective(problem, {0, 1});
  EXPECT_DOUBLE_EQ(value.estimation_error, 0.0);
  EXPECT_DOUBLE_EQ(value.similarity_error, 0.0);
  EXPECT_DOUBLE_EQ(value.overall, 0.0);
}

TEST(ObjectiveTest, LambdaOneIgnoresFeatures) {
  HashingProblem problem;
  problem.frequencies = {2.0, 4.0};
  problem.num_buckets = 1;
  problem.lambda = 1.0;
  const ObjectiveValue value = EvaluateObjective(problem, {0, 0});
  EXPECT_DOUBLE_EQ(value.estimation_error, 2.0);
  EXPECT_DOUBLE_EQ(value.similarity_error, 0.0);
  EXPECT_DOUBLE_EQ(value.overall, 2.0);
}

TEST(ObjectiveTest, MatchesBucketStatsOnRandomInstances) {
  // The from-scratch evaluator and the incremental BucketStats bookkeeping
  // must agree on any assignment.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(40, 5, 0.4, 2, seed);
    Rng rng(seed + 100);
    Assignment assignment(problem.NumElements());
    for (auto& bucket : assignment) {
      bucket = static_cast<int32_t>(rng.NextBounded(problem.num_buckets));
    }
    std::vector<BucketStats> buckets(problem.num_buckets, BucketStats(2));
    for (size_t i = 0; i < problem.NumElements(); ++i) {
      buckets[static_cast<size_t>(assignment[i])].Add(problem.frequencies[i],
                                                      problem.features[i]);
    }
    double estimation = 0.0;
    double similarity = 0.0;
    for (const auto& bucket : buckets) {
      estimation += bucket.EstimationError();
      similarity += bucket.SimilarityError();
    }
    const ObjectiveValue value = EvaluateObjective(problem, assignment);
    EXPECT_NEAR(value.estimation_error, estimation, 1e-7);
    EXPECT_NEAR(value.similarity_error, similarity, 1e-6);
  }
}

TEST(ObjectiveTest, NormalizedPerElementScale) {
  HashingProblem problem;
  problem.frequencies = {0.0, 4.0, 0.0, 4.0};
  problem.features = {{0.0}, {2.0}, {0.0}, {2.0}};
  problem.num_buckets = 2;
  problem.lambda = 0.5;
  // Buckets {0,1} and {2,3}: each has estimation error 4 and similarity 8.
  const NormalizedObjective normalized =
      NormalizeObjective(problem, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(normalized.estimation_error_per_element, 8.0 / 4.0);
  // Ordered co-bucket pairs: 2 buckets * 2^2 = 8 pairs; similarity 16 total.
  EXPECT_DOUBLE_EQ(normalized.similarity_error_per_pair, 16.0 / 8.0);
  EXPECT_DOUBLE_EQ(normalized.overall, 0.5 * 2.0 + 0.5 * 2.0);
}

TEST(ObjectiveTest, EmptyBucketsContributeNothing) {
  HashingProblem problem;
  problem.frequencies = {1.0, 2.0};
  problem.features = {{0.0}, {0.0}};
  problem.num_buckets = 10;
  problem.lambda = 0.5;
  const ObjectiveValue value = EvaluateObjective(problem, {3, 3});
  EXPECT_DOUBLE_EQ(value.estimation_error, 1.0);
}

}  // namespace
}  // namespace opthash::opt

// Unit tests for the little-endian byte codec and CRC-32 primitive
// underneath the binary snapshot format (src/io/bytes.h).

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "io/bytes.h"

namespace opthash::io {
namespace {

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The canonical CRC-32/ISO-HDLC check value: crc("123456789").
  const char* data = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(nullptr, 0), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string text = "stream me in two pieces";
  const uint32_t whole = Crc32(text.data(), text.size());
  const uint32_t first = Crc32(text.data(), 10);
  EXPECT_EQ(Crc32(text.data() + 10, text.size() - 10, first), whole);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> bytes(64, 0xAB);
  const uint32_t before = Crc32(bytes.data(), bytes.size());
  bytes[17] ^= 0x04;
  EXPECT_NE(Crc32(bytes.data(), bytes.size()), before);
}

TEST(ByteCodecTest, ScalarRoundTrip) {
  ByteWriter writer;
  writer.WriteU8(0x7F);
  writer.WriteU32(0xDEADBEEFu);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI32(-42);
  writer.WriteI64(std::numeric_limits<int64_t>::min());
  writer.WriteDouble(-1234.5678);
  writer.WriteString("hello bytes");

  ByteReader reader(writer.bytes().data(), writer.size());
  EXPECT_EQ(reader.ReadU8().value(), 0x7F);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.ReadI32().value(), -42);
  EXPECT_EQ(reader.ReadI64().value(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(reader.ReadDouble().value(), -1234.5678);
  EXPECT_EQ(reader.ReadString().value(), "hello bytes");
  EXPECT_TRUE(reader.ExpectFullyConsumed().ok());
}

TEST(ByteCodecTest, ScalarsAreLittleEndianOnDisk) {
  ByteWriter writer;
  writer.WriteU32(0x01020304u);
  ASSERT_EQ(writer.size(), 4u);
  EXPECT_EQ(writer.bytes()[0], 0x04);
  EXPECT_EQ(writer.bytes()[3], 0x01);
}

TEST(ByteCodecTest, ArrayRoundTrip) {
  const std::vector<uint64_t> u64s = {
      0, 1, std::numeric_limits<uint64_t>::max()};
  const std::vector<int64_t> i64s = {-5, 0, 7};
  const std::vector<int32_t> i32s = {-1, 2, -3};
  const std::vector<double> doubles = {0.0, -0.0, 3.14159, 1e300};
  ByteWriter writer;
  writer.WriteU64Array(u64s);
  writer.WriteI64Array(i64s);
  writer.WriteI32Array(i32s);
  writer.WriteDoubleArray(doubles);

  ByteReader reader(writer.bytes().data(), writer.size());
  std::vector<uint64_t> u64s_out;
  std::vector<int64_t> i64s_out;
  std::vector<int32_t> i32s_out;
  std::vector<double> doubles_out;
  ASSERT_TRUE(reader.ReadU64Array(u64s_out, u64s.size()).ok());
  ASSERT_TRUE(reader.ReadI64Array(i64s_out, i64s.size()).ok());
  ASSERT_TRUE(reader.ReadI32Array(i32s_out, i32s.size()).ok());
  ASSERT_TRUE(reader.ReadDoubleArray(doubles_out, doubles.size()).ok());
  EXPECT_EQ(u64s_out, u64s);
  EXPECT_EQ(i64s_out, i64s);
  EXPECT_EQ(i32s_out, i32s);
  EXPECT_EQ(doubles_out, doubles);
  EXPECT_TRUE(reader.ExpectFullyConsumed().ok());
}

TEST(ByteCodecTest, AlignmentPadsWithZeros) {
  ByteWriter writer;
  writer.WriteU32(1);
  writer.AlignTo(8);
  EXPECT_EQ(writer.size(), 8u);
  writer.WriteU8(9);
  writer.AlignTo(8);
  EXPECT_EQ(writer.size(), 16u);

  ByteReader reader(writer.bytes().data(), writer.size());
  ASSERT_TRUE(reader.ReadU32().ok());
  ASSERT_TRUE(reader.AlignTo(8).ok());
  EXPECT_EQ(reader.offset(), 8u);
  ASSERT_TRUE(reader.ReadU8().ok());
  ASSERT_TRUE(reader.AlignTo(8).ok());
  EXPECT_TRUE(reader.ExpectFullyConsumed().ok());
}

TEST(ByteCodecTest, NonZeroPaddingRejected) {
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(0xFFFFFFFFu);
  ByteReader reader(writer.bytes().data(), writer.size());
  ASSERT_TRUE(reader.ReadU32().ok());
  ASSERT_TRUE(reader.ReadU8().ok());  // Move off alignment.
  EXPECT_FALSE(reader.AlignTo(8).ok());
}

TEST(ByteCodecTest, TruncatedReadsFailCleanly) {
  ByteWriter writer;
  writer.WriteU32(7);
  ByteReader reader(writer.bytes().data(), writer.size());
  EXPECT_FALSE(reader.ReadU64().ok());
  // A failed read does not advance past the end.
  EXPECT_EQ(reader.remaining(), 4u);
  EXPECT_TRUE(reader.ReadU32().ok());
}

TEST(ByteCodecTest, TruncatedStringFailsCleanly) {
  ByteWriter writer;
  writer.WriteU32(1000);  // Length prefix promising bytes that don't exist.
  writer.WriteU8('x');
  ByteReader reader(writer.bytes().data(), writer.size());
  EXPECT_FALSE(reader.ReadString().ok());
}

TEST(ByteCodecTest, OversizedArrayCountRejectedBeforeAllocating) {
  ByteWriter writer;
  writer.WriteU32(0);
  ByteReader reader(writer.bytes().data(), writer.size());
  std::vector<uint64_t> out;
  // A corrupt header asking for ~2^61 elements must fail the bounds check,
  // not attempt a resize.
  EXPECT_FALSE(
      reader.ReadU64Array(out, std::numeric_limits<size_t>::max() / 8).ok());
}

TEST(ByteCodecTest, TrailingBytesDetected) {
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  ByteReader reader(writer.bytes().data(), writer.size());
  ASSERT_TRUE(reader.ReadU32().ok());
  EXPECT_FALSE(reader.ExpectFullyConsumed().ok());
}

TEST(ByteCodecTest, UnalignedLoadHelpersMatchCodec) {
  ByteWriter writer;
  writer.WriteU8(0);  // Force odd offsets for everything after.
  writer.WriteU32(0xCAFEBABEu);
  writer.WriteU64(0x1122334455667788ull);
  writer.WriteDouble(2.71828);
  const uint8_t* base = writer.bytes().data();
  EXPECT_EQ(LoadLittleU32(base + 1), 0xCAFEBABEu);
  EXPECT_EQ(LoadLittleU64(base + 5), 0x1122334455667788ull);
  EXPECT_EQ(LoadLittleDouble(base + 13), 2.71828);
}

}  // namespace
}  // namespace opthash::io

#include "opt/problem.h"

#include <gtest/gtest.h>

namespace opthash::opt {
namespace {

HashingProblem ValidProblem() {
  HashingProblem problem;
  problem.frequencies = {1.0, 2.0, 3.0};
  problem.features = {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}};
  problem.num_buckets = 2;
  problem.lambda = 0.5;
  return problem;
}

TEST(HashingProblemTest, ValidInstancePasses) {
  EXPECT_TRUE(ValidProblem().Validate().ok());
}

TEST(HashingProblemTest, RejectsEmptyElements) {
  HashingProblem problem = ValidProblem();
  problem.frequencies.clear();
  problem.features.clear();
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(HashingProblemTest, RejectsZeroBuckets) {
  HashingProblem problem = ValidProblem();
  problem.num_buckets = 0;
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(HashingProblemTest, RejectsLambdaOutOfRange) {
  HashingProblem problem = ValidProblem();
  problem.lambda = 1.5;
  EXPECT_FALSE(problem.Validate().ok());
  problem.lambda = -0.1;
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(HashingProblemTest, RejectsNegativeFrequency) {
  HashingProblem problem = ValidProblem();
  problem.frequencies[1] = -1.0;
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(HashingProblemTest, RequiresFeaturesWhenLambdaBelowOne) {
  HashingProblem problem = ValidProblem();
  problem.features.clear();
  problem.lambda = 0.5;
  EXPECT_FALSE(problem.Validate().ok());
  problem.lambda = 1.0;
  EXPECT_TRUE(problem.Validate().ok());
}

TEST(HashingProblemTest, RejectsInconsistentFeatureDims) {
  HashingProblem problem = ValidProblem();
  problem.features[1] = {1.0};
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(HashingProblemTest, RejectsPartialFeaturesAtLambdaOne) {
  HashingProblem problem = ValidProblem();
  problem.lambda = 1.0;
  problem.features.pop_back();
  EXPECT_FALSE(problem.Validate().ok());
}

TEST(SquaredDistanceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0.0, 0.0}, {3.0, 4.0}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1.0}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({-1.0, 2.0}, {1.0, -2.0}), 20.0);
}

TEST(IsValidAssignmentTest, ChecksLengthAndRange) {
  const HashingProblem problem = ValidProblem();
  EXPECT_TRUE(IsValidAssignment(problem, {0, 1, 0}));
  EXPECT_FALSE(IsValidAssignment(problem, {0, 1}));          // Too short.
  EXPECT_FALSE(IsValidAssignment(problem, {0, 1, 2}));       // Bucket 2 >= b.
  EXPECT_FALSE(IsValidAssignment(problem, {0, -1, 0}));      // Negative.
}

}  // namespace
}  // namespace opthash::opt

#include "ml/cross_validation.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"

namespace opthash::ml {
namespace {

Dataset TwoBlobs(size_t per_class, uint64_t seed) {
  Rng rng(seed);
  Dataset data(2);
  for (size_t i = 0; i < per_class; ++i) {
    data.Add({-3.0 + rng.NextGaussian(), rng.NextGaussian()}, 0);
    data.Add({3.0 + rng.NextGaussian(), rng.NextGaussian()}, 1);
  }
  return data;
}

TEST(StratifiedKFoldTest, FoldsPartitionTheDataset) {
  const Dataset data = TwoBlobs(25, 1);
  const std::vector<Fold> folds = StratifiedKFold(data, 5, 7);
  ASSERT_EQ(folds.size(), 5u);
  std::set<size_t> all_validation;
  for (const Fold& fold : folds) {
    for (size_t index : fold.validation_indices) {
      EXPECT_TRUE(all_validation.insert(index).second)
          << "index " << index << " in two validation folds";
    }
    // Train and validation are disjoint and cover everything.
    std::set<size_t> train(fold.train_indices.begin(),
                           fold.train_indices.end());
    for (size_t index : fold.validation_indices) {
      EXPECT_EQ(train.count(index), 0u);
    }
    EXPECT_EQ(train.size() + fold.validation_indices.size(),
              data.NumExamples());
  }
  EXPECT_EQ(all_validation.size(), data.NumExamples());
}

TEST(StratifiedKFoldTest, PreservesClassBalance) {
  const Dataset data = TwoBlobs(50, 2);
  const std::vector<Fold> folds = StratifiedKFold(data, 5, 8);
  for (const Fold& fold : folds) {
    size_t class0 = 0;
    size_t class1 = 0;
    for (size_t index : fold.validation_indices) {
      if (data.Label(index) == 0) {
        ++class0;
      } else {
        ++class1;
      }
    }
    EXPECT_EQ(class0, 10u);
    EXPECT_EQ(class1, 10u);
  }
}

TEST(StratifiedKFoldTest, RareClassStillCovered) {
  Dataset data(1);
  for (int i = 0; i < 30; ++i) data.Add({static_cast<double>(i)}, 0);
  data.Add({100.0}, 1);  // Single example of class 1.
  const std::vector<Fold> folds = StratifiedKFold(data, 5, 9);
  size_t appearances = 0;
  for (const Fold& fold : folds) {
    appearances += std::count_if(
        fold.validation_indices.begin(), fold.validation_indices.end(),
        [&](size_t index) { return data.Label(index) == 1; });
  }
  EXPECT_EQ(appearances, 1u);
}

TEST(CrossValAccuracyTest, HighOnSeparableData) {
  const Dataset data = TwoBlobs(40, 3);
  const double accuracy = CrossValAccuracy(
      [] { return std::make_unique<LogisticRegression>(); }, data, 5, 10);
  EXPECT_GE(accuracy, 0.95);
}

TEST(CrossValAccuracyTest, NearChanceOnRandomLabels) {
  Rng rng(4);
  Dataset data(2);
  for (int i = 0; i < 200; ++i) {
    data.Add({rng.NextGaussian(), rng.NextGaussian()},
             static_cast<int>(rng.NextBounded(2)));
  }
  const double accuracy = CrossValAccuracy(
      [] {
        DecisionTreeConfig config;
        config.max_depth = 2;
        return std::make_unique<DecisionTree>(config);
      },
      data, 5, 11);
  EXPECT_LT(accuracy, 0.65);
  EXPECT_GT(accuracy, 0.35);
}

TEST(GridSearchCvTest, PicksTheBetterHyperparameter) {
  // Depth-0 trees cannot express the blobs' boundary; depth-4 trees can.
  const Dataset data = TwoBlobs(40, 5);
  std::vector<GridCandidate> candidates;
  candidates.push_back({"depth0", [] {
                          DecisionTreeConfig config;
                          config.max_depth = 0;
                          return std::make_unique<DecisionTree>(config);
                        }});
  candidates.push_back({"depth4", [] {
                          DecisionTreeConfig config;
                          config.max_depth = 4;
                          return std::make_unique<DecisionTree>(config);
                        }});
  const GridSearchResult result = GridSearchCV(candidates, data, 5, 12);
  EXPECT_EQ(result.best_index, 1u);
  EXPECT_GT(result.best_accuracy, 0.9);
  ASSERT_EQ(result.accuracies.size(), 2u);
  EXPECT_LT(result.accuracies[0], result.accuracies[1]);
}

TEST(GridSearchCvTest, AccuraciesAlignWithCandidates) {
  const Dataset data = TwoBlobs(30, 6);
  std::vector<GridCandidate> candidates;
  for (int i = 0; i < 3; ++i) {
    candidates.push_back({"lr", [] {
                            return std::make_unique<LogisticRegression>();
                          }});
  }
  const GridSearchResult result = GridSearchCV(candidates, data, 4, 13);
  ASSERT_EQ(result.accuracies.size(), 3u);
  // Identical candidates must score identically (deterministic folds).
  EXPECT_DOUBLE_EQ(result.accuracies[0], result.accuracies[1]);
  EXPECT_DOUBLE_EQ(result.accuracies[1], result.accuracies[2]);
}

}  // namespace
}  // namespace opthash::ml

// Sliding-window and decayed counting over window-partitioned sketch
// rings, proven against exact oracles:
//  - an exact brute-force sliding-window counter (the ground truth every
//    windowed estimate is compared to),
//  - the linearity oracle: for linear sketches (count-min, count-sketch)
//    a windowed estimate must be BIT-identical to a fresh sketch of the
//    same geometry fed only the live-window suffix of the stream,
//  - hand-computed geometric weights for the decay algebra.
// Plus the edge cases (W = 1, empty windows, multi-count overshoot,
// manual ticks), mid-window serialize/resume equivalence, sharded ==
// single-thread windowed ingest, and hostile snapshot payload rejection.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "io/windowed_snapshot.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"
#include "sketch/windowed_sketch.h"

namespace opthash::sketch {
namespace {

// A deterministic pseudo-Zipf key stream: a few heavy keys, a long tail.
std::vector<uint64_t> ZipfStream(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const uint64_t r = rng.NextUint64();
    keys.push_back(r % ((r % 6 == 0) ? 5000 : 48));
  }
  return keys;
}

// Exact brute-force sliding-window counter: replays the stream with the
// same advance rule as the ring (a window closes after `window_items`
// arrivals; the ring keeps the current window plus the W-1 before it)
// and answers exact live-window frequencies.
class ExactWindowOracle {
 public:
  ExactWindowOracle(size_t num_windows, uint64_t window_items)
      : num_windows_(num_windows), window_items_(window_items) {
    windows_.emplace_back();
  }

  void Add(uint64_t key) {
    ++windows_.back()[key];
    ++current_items_;
    if (window_items_ > 0 && current_items_ >= window_items_) {
      windows_.emplace_back();
      current_items_ = 0;
      if (windows_.size() > num_windows_) {
        windows_.erase(windows_.begin());
      }
    }
  }

  uint64_t Count(uint64_t key) const {
    uint64_t total = 0;
    for (const auto& window : windows_) {
      auto it = window.find(key);
      if (it != window.end()) total += it->second;
    }
    return total;
  }

  uint64_t LiveTotal() const {
    uint64_t total = 0;
    for (const auto& window : windows_) {
      for (const auto& [key, count] : window) total += count;
    }
    return total;
  }

 private:
  size_t num_windows_;
  uint64_t window_items_;
  uint64_t current_items_ = 0;
  std::vector<std::map<uint64_t, uint64_t>> windows_;
};

TEST(WindowedSketchTest, CreateRejectsZeroWindows) {
  CountMinSketch proto(64, 2, 1);
  auto ring = WindowedSketch<CountMinSketch>::Create(proto, 0, 10);
  ASSERT_FALSE(ring.ok());
  EXPECT_EQ(ring.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(ring.status().ToString().find("at least one window"),
            std::string::npos);
}

TEST(WindowedSketchTest, CreateRejectsBadDecay) {
  CountMinSketch proto(64, 2, 1);
  for (double bad : {0.0, -0.5, 1.5}) {
    auto ring = WindowedSketch<CountMinSketch>::Create(proto, 4, 10, bad);
    ASSERT_FALSE(ring.ok()) << bad;
    EXPECT_NE(ring.status().ToString().find("decay"), std::string::npos);
  }
  // NaN compares false against every bound; the validator must still
  // reject it (a NaN weight would poison every decayed estimate).
  auto nan_ring = WindowedSketch<CountMinSketch>::Create(
      proto, 4, 10, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(nan_ring.ok());
}

TEST(WindowedSketchTest, PartValidationRejectsInconsistentRings) {
  EXPECT_FALSE(ValidateWindowedParts(4, 3, 0, 1.0).ok());  // counts != W
  EXPECT_FALSE(ValidateWindowedParts(4, 4, 4, 1.0).ok());  // head >= W
  EXPECT_TRUE(ValidateWindowedParts(4, 4, 3, 0.5).ok());
}

TEST(WindowedSketchTest, DecayWeightIsIteratedGeometricSeries) {
  EXPECT_EQ(WindowDecayWeight(0.5, 0), 1.0);
  EXPECT_EQ(WindowDecayWeight(0.5, 1), 0.5);
  // Exactly the iterated product, bit for bit — the reproducibility
  // contract the snapshot-equivalence tests lean on.
  EXPECT_EQ(WindowDecayWeight(0.9, 3), 0.9 * 0.9 * 0.9);
  EXPECT_EQ(WindowDecayWeight(1.0, 7), 1.0);
}

TEST(WindowedSketchTest, SingleWindowNoAdvanceDegeneratesToPlainSketch) {
  CountMinSketch plain(256, 4, 7);
  auto ring_or =
      WindowedSketch<CountMinSketch>::Create(plain, 1, /*window_items=*/0);
  ASSERT_TRUE(ring_or.ok());
  auto ring = std::move(ring_or).value();

  const auto keys = ZipfStream(3000, 11);
  plain.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  EXPECT_EQ(ring.window_sequence(), 0u);
  EXPECT_EQ(ring.total_items(), keys.size());
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(ring.Estimate(key), static_cast<double>(plain.Estimate(key)))
        << key;
  }
}

TEST(WindowedSketchTest, CountMinMatchesFreshSketchFedLiveSuffix) {
  constexpr size_t kWindows = 4;
  constexpr uint64_t kWindowItems = 250;
  CountMinSketch proto(512, 4, 3);
  auto ring_or =
      WindowedSketch<CountMinSketch>::Create(proto, kWindows, kWindowItems);
  ASSERT_TRUE(ring_or.ok());
  auto ring = std::move(ring_or).value();

  const auto keys = ZipfStream(2375, 13);  // Ends mid-window (2375 % 250).
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  // Linearity oracle: the merged ring must be BIT-identical to a fresh
  // same-geometry sketch fed only the arrivals still inside the ring.
  const uint64_t live = ring.total_items();
  ASSERT_LE(live, keys.size());
  CountMinSketch fresh = proto.EmptyClone();
  fresh.UpdateBatch(Span<const uint64_t>(keys.data() + (keys.size() - live),
                                         static_cast<size_t>(live)));
  for (uint64_t key = 0; key < 300; ++key) {
    EXPECT_EQ(ring.Estimate(key), static_cast<double>(fresh.Estimate(key)))
        << key;
  }
  // The batched path answers identically to the scalar path.
  std::vector<uint64_t> probe;
  for (uint64_t key = 0; key < 300; ++key) probe.push_back(key);
  std::vector<double> batched(probe.size());
  ring.EstimateBatch(Span<const uint64_t>(probe.data(), probe.size()),
                     Span<double>(batched.data(), batched.size()));
  for (size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(batched[i], ring.Estimate(probe[i])) << probe[i];
  }
}

TEST(WindowedSketchTest, CountMinDominatesExactSlidingWindowOracle) {
  constexpr size_t kWindows = 5;
  constexpr uint64_t kWindowItems = 300;
  CountMinSketch proto(1024, 4, 9);
  auto ring = WindowedSketch<CountMinSketch>::Create(proto, kWindows,
                                                     kWindowItems)
                  .value();
  ExactWindowOracle oracle(kWindows, kWindowItems);

  const auto keys = ZipfStream(4210, 17);
  for (uint64_t key : keys) oracle.Add(key);
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  ASSERT_EQ(ring.total_items(), oracle.LiveTotal());
  // Count-min never underestimates, and the windowed estimate obeys the
  // sketch's epsilon bound over the LIVE total (not the whole stream) —
  // that is the entire point of windowing.
  const double epsilon_bound =
      2.0 * static_cast<double>(oracle.LiveTotal()) / 1024.0;
  for (uint64_t key = 0; key < 200; ++key) {
    const double est = ring.Estimate(key);
    const double exact = static_cast<double>(oracle.Count(key));
    EXPECT_GE(est, exact) << key;
    EXPECT_LE(est - exact, epsilon_bound) << key;
  }
}

TEST(WindowedSketchTest, CountSketchMatchesFreshSketchFedLiveSuffix) {
  CountSketch proto(512, 5, 21);
  auto ring = WindowedSketch<CountSketch>::Create(proto, 3, 400).value();
  const auto keys = ZipfStream(1900, 19);
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  const uint64_t live = ring.total_items();
  CountSketch fresh = proto.EmptyClone();
  fresh.UpdateBatch(Span<const uint64_t>(keys.data() + (keys.size() - live),
                                         static_cast<size_t>(live)));
  for (uint64_t key = 0; key < 200; ++key) {
    // Signed medians survive the merge: the windowed answer keeps
    // count-sketch's signed semantics, cast to double.
    EXPECT_EQ(ring.Estimate(key), static_cast<double>(fresh.Estimate(key)))
        << key;
  }
}

TEST(WindowedSketchTest, MisraGriesAmpleCapacityIsExactOnLiveWindow) {
  // Capacity >= distinct keys in every window and in the union: the
  // summary never decrements, so the windowed answer IS the exact
  // sliding-window frequency.
  MisraGries proto(256);
  auto ring = WindowedSketch<MisraGries>::Create(proto, 4, 200).value();
  ExactWindowOracle oracle(4, 200);

  Rng rng(23);
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < 1700; ++i) keys.push_back(rng.NextBounded(40));
  for (uint64_t key : keys) oracle.Add(key);
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  for (uint64_t key = 0; key < 40; ++key) {
    EXPECT_EQ(ring.Estimate(key), static_cast<double>(oracle.Count(key)))
        << key;
  }
}

TEST(WindowedSketchTest, MisraGriesTightCapacityObeysSummaryBound) {
  constexpr size_t kCapacity = 8;
  MisraGries proto(kCapacity);
  auto ring = WindowedSketch<MisraGries>::Create(proto, 3, 500).value();
  ExactWindowOracle oracle(3, 500);

  const auto keys = ZipfStream(3100, 29);
  for (uint64_t key : keys) oracle.Add(key);
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  // Misra-Gries underestimates, and the mergeable-summaries guarantee
  // bounds the deficit by liveTotal / (capacity + 1) after any merge
  // sequence (Agarwal et al., PODS 2012).
  const double deficit_bound =
      static_cast<double>(oracle.LiveTotal()) / (kCapacity + 1);
  for (uint64_t key = 0; key < 48; ++key) {
    const double est = ring.Estimate(key);
    const double exact = static_cast<double>(oracle.Count(key));
    EXPECT_LE(est, exact) << key;
    EXPECT_LE(exact - est, deficit_bound) << key;
  }
}

TEST(WindowedSketchTest, SpaceSavingAmpleCapacityIsExactOnLiveWindow) {
  SpaceSaving proto(128);
  auto ring = WindowedSketch<SpaceSaving>::Create(proto, 3, 250).value();
  ExactWindowOracle oracle(3, 250);

  Rng rng(31);
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < 1400; ++i) keys.push_back(rng.NextBounded(32));
  for (uint64_t key : keys) oracle.Add(key);
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  for (uint64_t key = 0; key < 32; ++key) {
    EXPECT_EQ(ring.Estimate(key), static_cast<double>(oracle.Count(key)))
        << key;
  }
}

TEST(WindowedSketchTest, DecayedEstimateMatchesHandComputedWeights) {
  // Ample geometry so every per-window estimate is exact; each window
  // gets a known count of one key, so the decayed answer must equal the
  // hand-computed geometric series.
  constexpr double kDecay = 0.5;
  CountMinSketch proto(4096, 4, 5);
  auto ring =
      WindowedSketch<CountMinSketch>::Create(proto, 3, 10, kDecay).value();

  std::vector<uint64_t> window_a(10, 7);  // Window age 2 after the fills.
  std::vector<uint64_t> window_b(10, 7);  // Age 1.
  ring.UpdateBatch(Span<const uint64_t>(window_a.data(), window_a.size()));
  ring.UpdateBatch(Span<const uint64_t>(window_b.data(), window_b.size()));
  std::vector<uint64_t> current(4, 7);  // Age 0, window still open.
  ring.UpdateBatch(Span<const uint64_t>(current.data(), current.size()));

  ASSERT_EQ(ring.window_sequence(), 2u);
  ASSERT_EQ(ring.items_in_current_window(), 4u);
  const double expected = 4.0 * WindowDecayWeight(kDecay, 0) +
                          10.0 * WindowDecayWeight(kDecay, 1) +
                          10.0 * WindowDecayWeight(kDecay, 2);
  EXPECT_EQ(ring.Estimate(7), expected);
  EXPECT_EQ(ring.Estimate(8), 0.0);

  // The batched decayed path agrees with the scalar one.
  const uint64_t probe[] = {7, 8};
  double out[2] = {-1.0, -1.0};
  ring.EstimateBatch(Span<const uint64_t>(probe, 2), Span<double>(out, 2));
  EXPECT_EQ(out[0], expected);
  EXPECT_EQ(out[1], 0.0);
}

TEST(WindowedSketchTest, EmptyAndSingleItemWindowsAreHandledCleanly) {
  CountMinSketch proto(128, 3, 2);
  auto ring = WindowedSketch<CountMinSketch>::Create(proto, 3, 1).value();
  // window_items == 1: every arrival closes its own window.
  ring.Update(42);
  ring.Update(42);
  EXPECT_EQ(ring.window_sequence(), 2u);
  EXPECT_EQ(ring.Estimate(42), 2.0);
  ring.Update(42);
  ring.Update(99);
  // Each single-item window closed and advanced, so the ring now holds
  // only the last two closed windows (plus the empty current one): the
  // two oldest 42s fell out.
  EXPECT_EQ(ring.Estimate(42), 1.0);
  EXPECT_EQ(ring.Estimate(99), 1.0);

  // Manual ticks through an idle ring evict everything without crashing.
  auto idle = WindowedSketch<CountMinSketch>::Create(proto, 3, 0).value();
  idle.Update(5);
  for (int i = 0; i < 3; ++i) idle.AdvanceWindow();
  EXPECT_EQ(idle.Estimate(5), 0.0);
  EXPECT_EQ(idle.total_items(), 0u);
  const auto counts = idle.WindowCountsOldestFirst();
  for (uint64_t count : counts) EXPECT_EQ(count, 0u);
}

TEST(WindowedSketchTest, MultiCountUpdateOvershootsThenAdvances) {
  CountMinSketch proto(128, 3, 2);
  auto ring = WindowedSketch<CountMinSketch>::Create(proto, 2, 5).value();
  // A multi-count update is atomic: it may overshoot the window budget
  // and the advance happens immediately after.
  ring.Update(1, 12);
  EXPECT_EQ(ring.window_sequence(), 1u);
  EXPECT_EQ(ring.items_in_current_window(), 0u);
  EXPECT_EQ(ring.Estimate(1), 12.0);
  // The next short batch lands in the fresh window, not the full one.
  ring.Update(2);
  EXPECT_EQ(ring.items_in_current_window(), 1u);
  EXPECT_EQ(ring.window_sequence(), 1u);
  // One more advance evicts the overshot window entirely.
  ring.AdvanceWindow();
  EXPECT_EQ(ring.Estimate(1), 0.0);
  EXPECT_EQ(ring.Estimate(2), 1.0);
}

TEST(WindowedSketchTest, TickOnlyModeNeverAdvancesOnItems) {
  CountMinSketch proto(128, 3, 2);
  auto ring = WindowedSketch<CountMinSketch>::Create(proto, 4, 0).value();
  const auto keys = ZipfStream(5000, 37);
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));
  EXPECT_EQ(ring.window_sequence(), 0u);
  EXPECT_EQ(ring.items_in_current_window(), keys.size());
  ring.AdvanceWindow();
  EXPECT_EQ(ring.window_sequence(), 1u);
  EXPECT_EQ(ring.items_in_current_window(), 0u);
  EXPECT_EQ(ring.total_items(), keys.size());  // Still live, one window old.
}

TEST(WindowedSketchTest, WindowCountsReportOldestFirst) {
  CountMinSketch proto(64, 2, 1);
  auto ring = WindowedSketch<CountMinSketch>::Create(proto, 3, 4).value();
  std::vector<uint64_t> keys(9, 1);  // Two full windows + 1 in the third.
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));
  const auto counts = ring.WindowCountsOldestFirst();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 4u);
  EXPECT_EQ(counts[1], 4u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(ring.items_in_current_window(), 1u);
}

TEST(WindowedSketchTest, TopKOverLiveWindowsMatchesOracle) {
  MisraGries proto(64);
  auto ring = WindowedSketch<MisraGries>::Create(proto, 3, 100).value();
  ExactWindowOracle oracle(3, 100);

  // Keys with clearly separated live-window frequencies.
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < 350; ++i) keys.push_back(i % 7);
  for (uint64_t key : keys) oracle.Add(key);
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  // k >= distinct keys, so every per-window candidate list is complete
  // and the folded estimates are exact live-window counts.
  const auto hitters = ring.TopK(7);
  ASSERT_EQ(hitters.size(), 7u);
  for (const HeavyHitter& hitter : hitters) {
    EXPECT_EQ(hitter.estimate,
              static_cast<double>(oracle.Count(hitter.id)))
        << hitter.id;
    EXPECT_TRUE(hitter.guaranteed) << hitter.id;
  }
  // Heaviest first, per the canonical order.
  for (size_t i = 1; i < hitters.size(); ++i) {
    EXPECT_GE(hitters[i - 1].estimate, hitters[i].estimate);
  }

  // An empty ring reports no hitters instead of a k-long list of zeros.
  auto empty = WindowedSketch<MisraGries>::Create(proto, 3, 100).value();
  EXPECT_TRUE(empty.TopK(5).empty());
}

TEST(WindowedSketchTest, DecayedTopKScalesEstimatesByWindowAge) {
  constexpr double kDecay = 0.25;
  MisraGries proto(64);
  auto ring = WindowedSketch<MisraGries>::Create(proto, 2, 5, kDecay).value();
  std::vector<uint64_t> old_window(5, 3);
  ring.UpdateBatch(Span<const uint64_t>(old_window.data(), old_window.size()));
  std::vector<uint64_t> current(2, 4);
  ring.UpdateBatch(Span<const uint64_t>(current.data(), current.size()));

  const auto hitters = ring.TopK(2);
  ASSERT_EQ(hitters.size(), 2u);
  // Key 4 (current, weight 1) outranks key 3 (age 1, weight 0.25).
  EXPECT_EQ(hitters[0].id, 4u);
  EXPECT_EQ(hitters[0].estimate, 2.0);
  EXPECT_EQ(hitters[1].id, 3u);
  EXPECT_EQ(hitters[1].estimate, 5.0 * kDecay);
}

TEST(WindowedSketchTest, SerializeRoundTripResumesMidWindowExactly) {
  CountMinSketch proto(256, 4, 13);
  auto ring = WindowedSketch<CountMinSketch>::Create(proto, 4, 100,
                                                     /*decay=*/0.75)
                  .value();
  const auto keys = ZipfStream(730, 41);  // Mid-window: 730 % 100 != 0.
  ring.UpdateBatch(Span<const uint64_t>(keys.data(), keys.size()));

  io::ByteWriter out;
  io::SerializeWindowedSketch(ring, out);
  io::ByteReader in(out.bytes().data(), out.size());
  auto restored_or = io::DeserializeWindowedSketch<CountMinSketch>(in);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  ASSERT_TRUE(in.ExpectFullyConsumed().ok());
  auto restored = std::move(restored_or).value();

  // Ring position survives byte-exactly.
  EXPECT_EQ(restored.head(), ring.head());
  EXPECT_EQ(restored.window_sequence(), ring.window_sequence());
  EXPECT_EQ(restored.items_in_current_window(),
            ring.items_in_current_window());
  EXPECT_EQ(restored.decay(), ring.decay());
  EXPECT_EQ(restored.WindowCountsOldestFirst(),
            ring.WindowCountsOldestFirst());

  // And the restored ring continues mid-window exactly: same extra keys,
  // same answers, same ring position — the checkpoint/resume contract.
  const auto more = ZipfStream(430, 43);
  ring.UpdateBatch(Span<const uint64_t>(more.data(), more.size()));
  restored.UpdateBatch(Span<const uint64_t>(more.data(), more.size()));
  EXPECT_EQ(restored.window_sequence(), ring.window_sequence());
  for (uint64_t key = 0; key < 150; ++key) {
    EXPECT_EQ(restored.Estimate(key), ring.Estimate(key)) << key;
  }
}

TEST(WindowedSketchTest, ShardedWindowedIngestMatchesSingleThread) {
  CountMinSketch proto(512, 4, 19);
  auto single = WindowedSketch<CountMinSketch>::Create(proto, 4, 300).value();
  auto sharded = WindowedSketch<CountMinSketch>::Create(proto, 4, 300).value();

  const auto keys = ZipfStream(3456, 47);
  stream::ShardedIngestConfig one_thread;
  one_thread.num_threads = 1;
  ASSERT_TRUE(
      single.Ingest(Span<const uint64_t>(keys.data(), keys.size()), one_thread)
          .ok());
  stream::ShardedIngestConfig four_threads;
  four_threads.num_threads = 4;
  four_threads.block_size = 128;
  ASSERT_TRUE(sharded
                  .Ingest(Span<const uint64_t>(keys.data(), keys.size()),
                          four_threads)
                  .ok());

  // Window boundaries are item-count positions in the stream, independent
  // of sharding — and replicated count-min merges are exact, so every
  // answer and every ring coordinate is identical.
  EXPECT_EQ(sharded.window_sequence(), single.window_sequence());
  EXPECT_EQ(sharded.WindowCountsOldestFirst(),
            single.WindowCountsOldestFirst());
  for (uint64_t key = 0; key < 300; ++key) {
    EXPECT_EQ(sharded.Estimate(key), single.Estimate(key)) << key;
  }
}

TEST(WindowedSketchTest, HostileSnapshotPayloadsRejectedCleanly) {
  CountMinSketch proto(64, 2, 3);
  auto ring = WindowedSketch<CountMinSketch>::Create(proto, 2, 10).value();
  ring.Update(1);
  io::ByteWriter out;
  io::SerializeWindowedSketch(ring, out);
  const std::vector<uint8_t> good(out.bytes().begin(), out.bytes().end());

  {  // Unsupported payload version.
    std::vector<uint8_t> bad = good;
    bad[0] = 9;
    io::ByteReader in(bad.data(), bad.size());
    auto restored = io::DeserializeWindowedSketch<CountMinSketch>(in);
    ASSERT_FALSE(restored.ok());
    EXPECT_NE(restored.status().ToString().find("version"),
              std::string::npos);
  }
  {  // Inner section type lies about the sub-sketch kind.
    std::vector<uint8_t> bad = good;
    io::ByteReader in(bad.data(), bad.size());
    auto restored = io::DeserializeWindowedSketch<sketch::CountSketch>(in);
    ASSERT_FALSE(restored.ok());
    EXPECT_NE(restored.status().ToString().find("sub-sketch"),
              std::string::npos);
  }
  {  // Truncated mid-window payload.
    std::vector<uint8_t> bad(good.begin(), good.end() - 7);
    io::ByteReader in(bad.data(), bad.size());
    auto restored = io::DeserializeWindowedSketch<CountMinSketch>(in);
    EXPECT_FALSE(restored.ok());
  }
  {  // Every truncation point fails with a Status, never a crash.
    for (size_t len = 0; len < good.size(); len += 5) {
      io::ByteReader in(good.data(), len);
      auto restored = io::DeserializeWindowedSketch<CountMinSketch>(in);
      EXPECT_FALSE(restored.ok()) << len;
    }
  }
}

TEST(WindowedSketchTest, PeekInnerTypeValidatesHeader) {
  CountMinSketch proto(64, 2, 3);
  auto ring = WindowedSketch<CountMinSketch>::Create(proto, 2, 10).value();
  io::ByteWriter out;
  io::SerializeWindowedSketch(ring, out);
  auto inner = io::PeekWindowedInnerType(
      Span<const uint8_t>(out.bytes().data(), out.size()));
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(inner.value(), io::SectionType::kCountMinSketch);

  // An unknown inner type is rejected by the peek itself, before any
  // sub-sketch deserializer runs.
  std::vector<uint8_t> bad(out.bytes().begin(), out.bytes().end());
  bad[1] = 0xEE;
  auto rejected =
      io::PeekWindowedInnerType(Span<const uint8_t>(bad.data(), bad.size()));
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().ToString().find("unknown sub-sketch"),
            std::string::npos);
}

}  // namespace
}  // namespace opthash::sketch

#include "common/csv_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace opthash {
namespace {

TEST(CsvWriterTest, BasicSerialization) {
  CsvWriter csv({"x", "y"});
  csv.AddRow({"1", "2"});
  csv.AddRow({"3", "4"});
  EXPECT_EQ(csv.ToString(), "x,y\n1,2\n3,4\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv({"text"});
  csv.AddRow({"a,b"});
  csv.AddRow({"say \"hi\""});
  csv.AddRow({"line\nbreak"});
  const std::string out = csv.ToString();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
}

TEST(CsvWriterTest, WriteFileRoundTrips) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({"10", "20"});
  const std::string path = ::testing::TempDir() + "/csv_writer_test.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\n10,20\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, WriteFileFailsOnBadPath) {
  CsvWriter csv({"a"});
  const Status status = csv.WriteFile("/nonexistent-dir-xyz/file.csv");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace opthash

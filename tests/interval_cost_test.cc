#include "opt/interval_cost.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::opt {
namespace {

double NaiveCost(const std::vector<double>& values, size_t i, size_t j) {
  double mean = 0.0;
  for (size_t t = i; t <= j; ++t) mean += values[t];
  mean /= static_cast<double>(j - i + 1);
  double cost = 0.0;
  for (size_t t = i; t <= j; ++t) cost += std::abs(values[t] - mean);
  return cost;
}

TEST(IntervalCostTest, SingletonCostIsZero) {
  IntervalCost cost({1.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cost.Cost(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(cost.Cost(2, 2), 0.0);
}

TEST(IntervalCostTest, KnownValues) {
  IntervalCost cost({1.0, 3.0, 8.0});
  EXPECT_DOUBLE_EQ(cost.Cost(0, 1), 2.0);       // Mean 2.
  EXPECT_DOUBLE_EQ(cost.Cost(1, 2), 5.0);       // Mean 5.5.
  EXPECT_DOUBLE_EQ(cost.Cost(0, 2), 8.0);       // Mean 4: 3+1+4.
  EXPECT_DOUBLE_EQ(cost.Mean(0, 2), 4.0);
}

TEST(IntervalCostTest, ConstantIntervalIsFree) {
  IntervalCost cost({4.0, 4.0, 4.0, 4.0});
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(cost.Cost(i, j), 0.0);
    }
  }
}

TEST(IntervalCostTest, MatchesNaiveOnRandomSortedData) {
  Rng rng(1);
  std::vector<double> values(120);
  for (double& v : values) v = static_cast<double>(rng.NextBounded(1000));
  std::sort(values.begin(), values.end());
  IntervalCost cost(values);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t i = rng.NextBounded(values.size());
    const size_t j = i + rng.NextBounded(values.size() - i);
    EXPECT_NEAR(cost.Cost(i, j), NaiveCost(values, i, j), 1e-8)
        << "interval [" << i << ", " << j << "]";
  }
}

TEST(IntervalCostTest, CostGrowsWithIntervalExtension) {
  // Extending an interval on sorted data cannot decrease its cost (shown in
  // DESIGN.md; used implicitly by the DP's structure).
  Rng rng(2);
  std::vector<double> values(60);
  for (double& v : values) v = static_cast<double>(rng.NextBounded(500));
  std::sort(values.begin(), values.end());
  IntervalCost cost(values);
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    for (size_t j = i; j + 1 < values.size(); ++j) {
      EXPECT_LE(cost.Cost(i, j), cost.Cost(i, j + 1) + 1e-9);
    }
  }
}

TEST(MedianIntervalCostTest, QuadrangleInequalityHolds) {
  // w(i,j) + w(i',j') <= w(i',j) + w(i,j') for i <= i' <= j <= j' — the
  // concave Monge condition behind the divide-and-conquer and SMAWK DP
  // layers (Wu 1991; Grønlund et al. 2017). It holds for the *median*
  // centred cost (classic k-median), which is why those layer algorithms
  // are exact for DpCostCenter::kMedian.
  Rng rng(3);
  std::vector<double> values(40);
  for (double& v : values) v = static_cast<double>(rng.NextBounded(300));
  std::sort(values.begin(), values.end());
  MedianIntervalCost cost(values);
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t ip = i; ip < values.size(); ++ip) {
      for (size_t j = ip; j < values.size(); ++j) {
        for (size_t jp = j; jp < values.size(); ++jp) {
          const double lhs = cost.Cost(i, j) + cost.Cost(ip, jp);
          const double rhs = cost.Cost(ip, j) + cost.Cost(i, jp);
          EXPECT_LE(lhs, rhs + 1e-7);
        }
      }
    }
  }
}

TEST(IntervalCostTest, MeanCostQuadrangleInequalityCanFail) {
  // The *mean* centred cost of Problem (3) is NOT Monge: this documents
  // why DpAlgorithm::kQuadratic is the certified-exact configuration for
  // the faithful objective while D&C/SMAWK are exact only for kMedian.
  Rng rng(3);
  std::vector<double> values(40);
  for (double& v : values) v = static_cast<double>(rng.NextBounded(300));
  std::sort(values.begin(), values.end());
  IntervalCost cost(values);
  bool found_violation = false;
  for (size_t i = 0; i < values.size() && !found_violation; ++i) {
    for (size_t ip = i; ip < values.size() && !found_violation; ++ip) {
      for (size_t j = ip; j < values.size() && !found_violation; ++j) {
        for (size_t jp = j; jp < values.size(); ++jp) {
          const double lhs = cost.Cost(i, j) + cost.Cost(ip, jp);
          const double rhs = cost.Cost(ip, j) + cost.Cost(i, jp);
          if (lhs > rhs + 1e-6) {
            found_violation = true;
            break;
          }
        }
      }
    }
  }
  EXPECT_TRUE(found_violation);
}

TEST(MedianIntervalCostTest, MatchesNaiveMedianCost) {
  Rng rng(4);
  std::vector<double> values(80);
  for (double& v : values) v = static_cast<double>(rng.NextBounded(500));
  std::sort(values.begin(), values.end());
  MedianIntervalCost cost(values);
  for (int trial = 0; trial < 1000; ++trial) {
    const size_t i = rng.NextBounded(values.size());
    const size_t j = i + rng.NextBounded(values.size() - i);
    const double median = values[i + (j - i) / 2];
    double naive = 0.0;
    for (size_t t = i; t <= j; ++t) naive += std::abs(values[t] - median);
    EXPECT_NEAR(cost.Cost(i, j), naive, 1e-8);
  }
}

TEST(MedianIntervalCostTest, MedianCostLowerBoundsMeanCost) {
  // The median minimizes the sum of absolute deviations, so for every
  // interval: median cost <= mean cost.
  Rng rng(5);
  std::vector<double> values(60);
  for (double& v : values) v = static_cast<double>(rng.NextBounded(400));
  std::sort(values.begin(), values.end());
  IntervalCost mean_cost(values);
  MedianIntervalCost median_cost(values);
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i; j < values.size(); ++j) {
      EXPECT_LE(median_cost.Cost(i, j), mean_cost.Cost(i, j) + 1e-9);
    }
  }
}

TEST(IntervalCostTest, DuplicatesHandled) {
  IntervalCost cost({2.0, 2.0, 2.0, 10.0});
  // Mean of all four = 4: 2+2+2+6 = 12.
  EXPECT_DOUBLE_EQ(cost.Cost(0, 3), 12.0);
}

}  // namespace
}  // namespace opthash::opt

// Multi-client stress over the TCP serving plane: 256 concurrent
// connections multiplexed onto a per-core event-loop pool (thread count
// must stay near the core count, not the connection count), a mixed
// query/ingest/stats workload racing clients that die mid-frame, file
// descriptors settling back to baseline afterwards, and the connection
// limit rejecting client N+1 with a clean error frame instead of a hang.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/socket_io.h"
#include "server/tcp_listener.h"

#ifndef _WIN32
#include <dirent.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

#ifndef _WIN32

namespace opthash::server {
namespace {

void SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

std::unique_ptr<ServedModel> FreshCms(size_t width, uint64_t seed) {
  FreshSketchSpec spec;
  spec.kind = "cms";
  spec.width = width;
  spec.depth = 4;
  spec.seed = seed;
  auto model = CreateServedSketch(spec);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

#ifdef __linux__
size_t CountOpenFds() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count > 0 ? count - 3 : 0;  // ".", "..", the opendir fd itself.
}

size_t CountThreads() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  size_t threads = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, "Threads:", 8) == 0) {
      threads = static_cast<size_t>(std::strtoul(line + 8, nullptr, 10));
      break;
    }
  }
  std::fclose(file);
  return threads;
}
#endif  // __linux__

bool WaitFor(const std::function<bool()>& done, int deadline_millis) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_millis);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return done();
}

TEST(ServerStressTest, TwoHundredFiftySixConcurrentTcpClients) {
#ifdef __linux__
  const size_t fds_before = CountOpenFds();
#endif
  ServerConfig config;
  config.listen_address = "127.0.0.1:0";
  config.accept_poll_millis = 20;
  config.max_connections = 512;
  Server server(config, FreshCms(512, 3));
#ifdef __linux__
  const size_t threads_before = CountThreads();
#endif
  ASSERT_TRUE(server.Start().ok());
  const HostPort tcp{"127.0.0.1", server.tcp_port()};

  constexpr size_t kClients = 256;
  std::vector<int> fds;
  fds.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    auto fd = ConnectTcp(tcp);
    ASSERT_TRUE(fd.ok()) << "client " << i << ": "
                         << fd.status().ToString();
    SetRecvTimeout(fd.value(), 10000);
    fds.push_back(fd.value());
  }

#ifdef __linux__
  // The serving plane must not have spawned a thread per connection:
  // with 256 live sessions the daemon grew by roughly one loop per core
  // plus the accept and rotation threads.
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  const size_t threads_now = CountThreads();
  ASSERT_GT(threads_now, 0u);
  EXPECT_LE(threads_now - threads_before, cores + 8)
      << "thread-per-session is back";
  EXPECT_LT(threads_now - threads_before, kClients / 2);
#endif

  // All sessions adopted and counted.
  EXPECT_TRUE(WaitFor([&] { return server.connections() == kClients; },
                      10000))
      << server.connections() << " of " << kClients << " adopted";

  // Write all pings first, then collect all pongs: every one of the 256
  // multiplexed sessions must answer.
  std::vector<uint8_t> ping;
  EncodeEmptyMessage(MessageType::kPing, ping);
  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(
        WriteAll(fds[i], Span<const uint8_t>(ping.data(), ping.size()))
            .ok())
        << "client " << i;
  }
  std::vector<uint8_t> payload;
  for (size_t i = 0; i < kClients; ++i) {
    ASSERT_TRUE(ReadFramePayload(fds[i], payload).ok()) << "client " << i;
    auto type = PeekMessageType(
        Span<const uint8_t>(payload.data(), payload.size()));
    ASSERT_TRUE(type.ok());
    EXPECT_EQ(type.value(), MessageType::kPong) << "client " << i;
  }

  auto stats = server.StatsNow();
  EXPECT_GE(stats.sessions_accepted, kClients);

  for (int fd : fds) CloseSocket(fd);
  EXPECT_TRUE(WaitFor([&] { return server.connections() == 0; }, 10000))
      << server.connections() << " sessions still alive after close";
  server.RequestShutdown();

#ifdef __linux__
  // Every server-side descriptor must be returned: compare against the
  // pre-server baseline once the daemon is fully down.
  EXPECT_TRUE(WaitFor([&] { return CountOpenFds() <= fds_before; }, 10000))
      << "fd leak: " << CountOpenFds() << " open, baseline " << fds_before;
#endif
}

TEST(ServerStressTest, MixedWorkloadSurvivesMidFrameKills) {
  // Writers, readers, stats pollers and deliberately dying clients share
  // the daemon. Counts must stay exact: a connection killed mid-frame
  // contributes nothing, a completed ingest request contributes all of
  // its block, and a single-key estimate in an ample sketch equals the
  // total ingested for that key.
  ServerConfig config;
  config.listen_address = "127.0.0.1:0";
  config.accept_poll_millis = 20;
  Server server(config, FreshCms(4096, 17));
  ASSERT_TRUE(server.Start().ok());
  const HostPort tcp{"127.0.0.1", server.tcp_port()};
  const std::string target =
      "127.0.0.1:" + std::to_string(server.tcp_port());

  constexpr uint64_t kKey = 99991;
  constexpr size_t kBlock = 50;
  constexpr size_t kRequestsPerWriter = 40;
  constexpr size_t kWriters = 4;
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (size_t w = 0; w < kWriters; ++w) {
    workers.emplace_back([&] {
      auto client = Client::Connect(target);
      ASSERT_TRUE(client.ok());
      const std::vector<uint64_t> block(kBlock, kKey);
      for (size_t r = 0; r < kRequestsPerWriter; ++r) {
        auto acked = client.value().Ingest(block);
        ASSERT_TRUE(acked.ok()) << acked.status().ToString();
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    workers.emplace_back([&] {
      auto client = Client::Connect(target);
      ASSERT_TRUE(client.ok());
      std::vector<double> out;
      const std::vector<uint64_t> one_key = {kKey};
      double last = 0.0;
      while (!stop.load()) {
        ASSERT_TRUE(client.value().Query(one_key, out).ok());
        EXPECT_GE(out[0], last) << "counts went backwards";
        last = out[0];
      }
    });
  }
  workers.emplace_back([&] {
    auto client = Client::Connect(target);
    ASSERT_TRUE(client.ok());
    while (!stop.load()) {
      auto stats = client.value().Stats();
      ASSERT_TRUE(stats.ok());
    }
  });
  // The killers: half-written ingest frames for the same key, then an
  // abrupt close. None of these may land in the counts.
  for (int k = 0; k < 2; ++k) {
    workers.emplace_back([&, k] {
      Rng rng(static_cast<uint64_t>(k) + 777);
      std::vector<uint8_t> frame;
      const std::vector<uint64_t> block(kBlock, kKey);
      for (int i = 0; i < 20; ++i) {
        auto fd = ConnectTcp(tcp);
        if (!fd.ok()) continue;  // Accept backlog raced shutdown? Retry.
        EncodeKeyRequest(MessageType::kIngest,
                         Span<const uint64_t>(block.data(), block.size()),
                         frame);
        const size_t cut = 1 + rng.NextBounded(frame.size() - 1);
        (void)WriteAll(fd.value(),
                       Span<const uint8_t>(frame.data(), cut));
        CloseSocket(fd.value());
      }
    });
  }

  for (size_t w = 0; w < kWriters; ++w) workers[w].join();
  stop.store(true);
  for (size_t w = kWriters; w < workers.size(); ++w) workers[w].join();

  auto client = Client::Connect(target);
  ASSERT_TRUE(client.ok());
  std::vector<double> out;
  const std::vector<uint64_t> one_key = {kKey};
  ASSERT_TRUE(client.value().Query(one_key, out).ok());
  EXPECT_EQ(out[0],
            static_cast<double>(kWriters * kRequestsPerWriter * kBlock));
  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().ingest_requests, kWriters * kRequestsPerWriter);
  EXPECT_EQ(stats.value().items_ingested,
            kWriters * kRequestsPerWriter * kBlock);
  server.RequestShutdown();
}

TEST(ServerStressTest, ConnectionLimitRejectsCleanlyAndRecovers) {
  ServerConfig config;
  config.listen_address = "127.0.0.1:0";
  config.accept_poll_millis = 20;
  config.max_connections = 8;
  Server server(config, FreshCms(512, 3));
  ASSERT_TRUE(server.Start().ok());
  const HostPort tcp{"127.0.0.1", server.tcp_port()};

  std::vector<uint8_t> ping;
  EncodeEmptyMessage(MessageType::kPing, ping);
  std::vector<uint8_t> payload;

  // Fill the limit; each session proves it is live with a pong.
  std::vector<int> fds;
  for (size_t i = 0; i < 8; ++i) {
    auto fd = ConnectTcp(tcp);
    ASSERT_TRUE(fd.ok());
    SetRecvTimeout(fd.value(), 5000);
    ASSERT_TRUE(
        WriteAll(fd.value(), Span<const uint8_t>(ping.data(), ping.size()))
            .ok());
    ASSERT_TRUE(ReadFramePayload(fd.value(), payload).ok());
    fds.push_back(fd.value());
  }

  // Client N+1: accepted at the TCP level, answered with one clean
  // FailedPrecondition error frame, then hung up — never a hang.
  {
    auto fd = ConnectTcp(tcp);
    ASSERT_TRUE(fd.ok());
    SetRecvTimeout(fd.value(), 5000);
    ASSERT_TRUE(ReadFramePayload(fd.value(), payload).ok())
        << "over-limit client was left hanging";
    Status remote;
    ASSERT_TRUE(
        DecodeErrorResponse(
            Span<const uint8_t>(payload.data(), payload.size()), remote)
            .ok());
    EXPECT_EQ(remote.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(remote.message().find("connection limit"), std::string::npos)
        << remote.message();
    EXPECT_EQ(ReadFramePayload(fd.value(), payload).code(),
              StatusCode::kNotFound);
    CloseSocket(fd.value());
  }
  EXPECT_GE(server.sessions_rejected(), 1u);

  // Releasing one slot lets the next client in (the loop reaps the
  // closed session at poll cadence, so retry briefly).
  CloseSocket(fds.back());
  fds.pop_back();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool admitted = false;
  while (std::chrono::steady_clock::now() < deadline && !admitted) {
    auto fd = ConnectTcp(tcp);
    ASSERT_TRUE(fd.ok());
    SetRecvTimeout(fd.value(), 2000);
    ASSERT_TRUE(
        WriteAll(fd.value(), Span<const uint8_t>(ping.data(), ping.size()))
            .ok());
    if (ReadFramePayload(fd.value(), payload).ok()) {
      auto type = PeekMessageType(
          Span<const uint8_t>(payload.data(), payload.size()));
      admitted = type.ok() && type.value() == MessageType::kPong;
    }
    CloseSocket(fd.value());
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  EXPECT_TRUE(admitted) << "freed slot was never granted to a new client";

  for (int fd : fds) CloseSocket(fd);
  server.RequestShutdown();
}

}  // namespace
}  // namespace opthash::server

#endif  // !_WIN32

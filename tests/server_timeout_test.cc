// Idle-timeout and slow-reader behavior of the serving daemon: sessions
// with no protocol progress are reaped at --idle-timeout while active
// ones on the same loops keep answering, and a client that stops
// reading mid-reply is disconnected without stalling anybody else. The
// loop-level backpressure cap itself is unit-tested in
// event_loop_test.cc; these tests prove the daemon wiring end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/socket_io.h"
#include "server/tcp_listener.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

#ifndef _WIN32

namespace opthash::server {
namespace {

std::string FreshSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/opthash_idle_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::unique_ptr<ServedModel> FreshCms() {
  FreshSketchSpec spec;
  spec.kind = "cms";
  spec.width = 1024;
  spec.depth = 4;
  spec.seed = 5;
  auto model = CreateServedSketch(spec);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

void SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

TEST(ServerTimeoutTest, IdleSessionReapedWhileActiveOneSurvives) {
  ServerConfig config;
  config.socket_path = FreshSocketPath();
  config.accept_poll_millis = 20;
  config.idle_timeout_seconds = 0.3;
  Server server(config, FreshCms());
  ASSERT_TRUE(server.Start().ok());

  // The idle session: connects, says nothing, must be cut loose.
  auto idle_fd = ConnectUnix(config.socket_path);
  ASSERT_TRUE(idle_fd.ok());
  SetRecvTimeout(idle_fd.value(), 5000);

  // The active session: pings on a cadence well inside the timeout for
  // several timeout-lengths — activity, not connection age, is what
  // keeps a session alive.
  auto active = Client::Connect(config.socket_path);
  ASSERT_TRUE(active.ok());
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(active.value().Ping().ok()) << "tick " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // ~1.2s elapsed against a 0.3s timeout: the silent session is gone
  // (EOF on its end, counted by the daemon), the chatty one is not.
  std::vector<uint8_t> payload;
  EXPECT_EQ(ReadFramePayload(idle_fd.value(), payload).code(),
            StatusCode::kNotFound)
      << "idle session was never reaped";
  EXPECT_GE(server.sessions_closed_idle(), 1u);
  EXPECT_TRUE(active.value().Ping().ok());
  CloseSocket(idle_fd.value());
  server.RequestShutdown();
}

TEST(ServerTimeoutTest, ZeroTimeoutMeansSessionsLiveForever) {
  ServerConfig config;
  config.socket_path = FreshSocketPath();
  config.accept_poll_millis = 20;  // idle_timeout_seconds stays 0.
  Server server(config, FreshCms());
  ASSERT_TRUE(server.Start().ok());

  auto idle_fd = ConnectUnix(config.socket_path);
  ASSERT_TRUE(idle_fd.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  EXPECT_EQ(server.sessions_closed_idle(), 0u);
  EXPECT_EQ(server.connections(), 1u);

  // The silent session is still perfectly serviceable.
  SetRecvTimeout(idle_fd.value(), 5000);
  std::vector<uint8_t> ping;
  EncodeEmptyMessage(MessageType::kPing, ping);
  ASSERT_TRUE(WriteAll(idle_fd.value(),
                       Span<const uint8_t>(ping.data(), ping.size()))
                  .ok());
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFramePayload(idle_fd.value(), payload).ok());
  CloseSocket(idle_fd.value());
  server.RequestShutdown();
}

TEST(ServerTimeoutTest, SlowReaderDisconnectedWithoutStallingOthers) {
  // A client asks a megabytes-sized question and then refuses to read
  // the answer. The daemon buffers, stops making progress on that
  // session, and the idle timeout guillotines it — while another client
  // on the same loops keeps round-tripping the whole time.
  ServerConfig config;
  config.listen_address = "127.0.0.1:0";
  config.accept_poll_millis = 20;
  config.idle_timeout_seconds = 0.4;
  Server server(config, FreshCms());
  ASSERT_TRUE(server.Start().ok());
  const HostPort tcp{"127.0.0.1", server.tcp_port()};
  const std::string target =
      "127.0.0.1:" + std::to_string(server.tcp_port());

  // The slow reader sends one maximal query (a ~4 MB reply) and stops.
  auto slow_fd = ConnectTcp(tcp);
  ASSERT_TRUE(slow_fd.ok());
  std::vector<uint64_t> keys(kMaxKeysPerFrame);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<uint64_t>(i);
  }
  std::vector<uint8_t> request;
  EncodeKeyRequest(MessageType::kQuery,
                   Span<const uint64_t>(keys.data(), keys.size()), request);
  ASSERT_TRUE(
      WriteAll(slow_fd.value(),
               Span<const uint8_t>(request.data(), request.size()))
          .ok());

  // Meanwhile a well-behaved client must never stall: these pings run
  // strictly after the big reply is parked in the slow session's write
  // buffer, and each one round-trips promptly (the ctest timeout is the
  // stall detector — a blocked loop would hang right here).
  auto active = Client::Connect(target);
  ASSERT_TRUE(active.ok());
  std::vector<double> out;
  const std::vector<uint64_t> one_key = {7};
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(active.value().Query(one_key, out).ok()) << "tick " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }

  // ~0.75s of no progress against a 0.4s timeout: the slow reader is
  // disconnected (reset once its socket vanishes server-side) and
  // counted. Reading our end now drains what the kernel buffered and
  // then reports the cut — but never a full, clean 4 MB reply.
  EXPECT_GE(server.sessions_closed_idle() +
                server.sessions_closed_backpressure(),
            1u)
      << "slow reader was never disconnected";
  EXPECT_TRUE(active.value().Ping().ok());
  CloseSocket(slow_fd.value());
  server.RequestShutdown();
}

}  // namespace
}  // namespace opthash::server

#endif  // !_WIN32

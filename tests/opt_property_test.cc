// Property-based sweeps over the optimization core: invariants that must
// hold for every instance, checked across randomized (n, b, lambda) grids.

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "opt/bcd.h"
#include "opt/dp.h"
#include "opt/exact.h"
#include "opt_test_util.h"

namespace opthash::opt {
namespace {

using ProblemShape = std::tuple<size_t, size_t, double>;  // n, b, lambda.

class OptInvariantSweep : public ::testing::TestWithParam<ProblemShape> {};

TEST_P(OptInvariantSweep, BcdIncrementalBookkeepingNeverDrifts) {
  // After an arbitrary number of sweeps, the incrementally maintained
  // objective equals a from-scratch evaluation.
  const auto [n, b, lambda] = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(n, b, lambda, 2, seed);
    BcdConfig config;
    config.max_sweeps = 50;
    config.seed = seed;
    const SolveResult result = BcdSolver(config).Solve(problem);
    ASSERT_FALSE(result.sweep_objectives.empty());
    EXPECT_NEAR(result.sweep_objectives.back(), result.objective.overall,
                1e-6 * std::max(1.0, result.objective.overall));
  }
}

TEST_P(OptInvariantSweep, ObjectiveInvariantUnderBucketRelabeling) {
  // Buckets are interchangeable: permuting bucket ids leaves every error
  // term unchanged.
  const auto [n, b, lambda] = GetParam();
  const HashingProblem problem = testutil::RandomProblem(n, b, lambda, 2, 9);
  Rng rng(10);
  Assignment assignment(n);
  for (auto& bucket : assignment) {
    bucket = static_cast<int32_t>(rng.NextBounded(b));
  }
  const ObjectiveValue base = EvaluateObjective(problem, assignment);

  const std::vector<size_t> perm = rng.Permutation(b);
  Assignment relabeled(n);
  for (size_t i = 0; i < n; ++i) {
    relabeled[i] =
        static_cast<int32_t>(perm[static_cast<size_t>(assignment[i])]);
  }
  const ObjectiveValue permuted = EvaluateObjective(problem, relabeled);
  EXPECT_NEAR(base.estimation_error, permuted.estimation_error, 1e-9);
  EXPECT_NEAR(base.similarity_error, permuted.similarity_error, 1e-7);
  EXPECT_NEAR(base.overall, permuted.overall, 1e-7);
}

TEST_P(OptInvariantSweep, MoreSweepsNeverHurt) {
  // With identical seeds, a longer BCD run extends the same trajectory, so
  // its final objective cannot be worse.
  const auto [n, b, lambda] = GetParam();
  const HashingProblem problem = testutil::RandomProblem(n, b, lambda, 2, 11);
  BcdConfig short_config;
  short_config.max_sweeps = 2;
  short_config.seed = 21;
  BcdConfig long_config = short_config;
  long_config.max_sweeps = 30;
  const double short_objective =
      BcdSolver(short_config).Solve(problem).objective.overall;
  const double long_objective =
      BcdSolver(long_config).Solve(problem).objective.overall;
  EXPECT_LE(long_objective, short_objective + 1e-9);
}

TEST_P(OptInvariantSweep, SolversRespectObjectiveHierarchy) {
  // exact <= bcd everywhere; for lambda = 1 additionally dp <= bcd.
  const auto [n, b, lambda] = GetParam();
  if (n > 12) GTEST_SKIP() << "exact solver only exercised on small n";
  const HashingProblem problem = testutil::RandomProblem(n, b, lambda, 2, 12);
  BcdConfig bcd_config;
  bcd_config.num_restarts = 2;
  const double bcd = BcdSolver(bcd_config).Solve(problem).objective.overall;
  ExactConfig exact_config;
  exact_config.time_limit_seconds = 10.0;
  exact_config.bcd = bcd_config;
  const double exact =
      ExactSolver(exact_config).Solve(problem).objective.overall;
  EXPECT_LE(exact, bcd + 1e-9);
  if (lambda == 1.0) {
    const double dp = DpSolver().Solve(problem).objective.overall;
    EXPECT_LE(dp, bcd + 1e-9);
    EXPECT_NEAR(dp, exact, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OptInvariantSweep,
    ::testing::Values(std::make_tuple(10, 3, 1.0), std::make_tuple(10, 3, 0.5),
                      std::make_tuple(12, 2, 0.0), std::make_tuple(40, 6, 0.7),
                      std::make_tuple(80, 10, 1.0),
                      std::make_tuple(60, 4, 0.3)));

TEST(OptPropertyTest, ExactLowerBoundBelowAnyFeasibleSolution) {
  const HashingProblem problem = testutil::RandomProblem(9, 3, 0.6, 2, 13);
  const SolveResult result = ExactSolver().Solve(problem);
  ASSERT_TRUE(result.proven_optimal);
  Rng rng(14);
  for (int trial = 0; trial < 50; ++trial) {
    Assignment assignment(problem.NumElements());
    for (auto& bucket : assignment) {
      bucket = static_cast<int32_t>(rng.NextBounded(problem.num_buckets));
    }
    EXPECT_GE(EvaluateObjective(problem, assignment).overall,
              result.lower_bound - 1e-9);
  }
}

TEST(OptPropertyTest, DpUsesExactlyMinNBBuckets) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const size_t n = 20 + seed * 5;
    const size_t b = 4 + seed;
    HashingProblem problem = testutil::RandomProblem(n, b, 1.0, 0, seed, 1e6);
    // Distinct-ish frequencies make every additional bucket useful.
    const SolveResult result = DpSolver().Solve(problem);
    std::vector<bool> used(b, false);
    for (int32_t bucket : result.assignment) {
      used[static_cast<size_t>(bucket)] = true;
    }
    const auto used_count = static_cast<size_t>(
        std::count(used.begin(), used.end(), true));
    EXPECT_EQ(used_count, std::min(n, b)) << "seed " << seed;
  }
}

TEST(OptPropertyTest, NormalizedObjectiveConsistentWithRaw) {
  const HashingProblem problem = testutil::RandomProblem(30, 5, 0.4, 2, 15);
  Rng rng(16);
  for (int trial = 0; trial < 20; ++trial) {
    Assignment assignment(problem.NumElements());
    for (auto& bucket : assignment) {
      bucket = static_cast<int32_t>(rng.NextBounded(problem.num_buckets));
    }
    const ObjectiveValue raw = EvaluateObjective(problem, assignment);
    const NormalizedObjective normalized =
        NormalizeObjective(problem, assignment);
    // est/element * n == raw estimation error.
    EXPECT_NEAR(normalized.estimation_error_per_element *
                    static_cast<double>(problem.NumElements()),
                raw.estimation_error, 1e-7);
    // sim/pair * ordered-pairs == raw similarity error.
    std::vector<double> counts(problem.num_buckets, 0.0);
    for (int32_t bucket : assignment) counts[static_cast<size_t>(bucket)] += 1;
    double pairs = 0.0;
    for (double c : counts) pairs += c * c;
    EXPECT_NEAR(normalized.similarity_error_per_pair * pairs,
                raw.similarity_error, 1e-6);
  }
}

TEST(OptPropertyTest, ScalingFrequenciesScalesEstimationError) {
  // The estimation term is positively homogeneous in f; the similarity
  // term is unaffected.
  HashingProblem problem = testutil::RandomProblem(25, 4, 0.5, 2, 17);
  Rng rng(18);
  Assignment assignment(problem.NumElements());
  for (auto& bucket : assignment) {
    bucket = static_cast<int32_t>(rng.NextBounded(problem.num_buckets));
  }
  const ObjectiveValue base = EvaluateObjective(problem, assignment);
  HashingProblem scaled = problem;
  for (double& f : scaled.frequencies) f *= 7.0;
  const ObjectiveValue scaled_value = EvaluateObjective(scaled, assignment);
  EXPECT_NEAR(scaled_value.estimation_error, 7.0 * base.estimation_error,
              1e-6);
  EXPECT_NEAR(scaled_value.similarity_error, base.similarity_error, 1e-7);
}

TEST(OptPropertyTest, TranslatingFrequenciesPreservesEstimationError) {
  // Adding a constant to every frequency shifts all bucket means equally.
  HashingProblem problem = testutil::RandomProblem(25, 4, 1.0, 0, 19);
  Rng rng(20);
  Assignment assignment(problem.NumElements());
  for (auto& bucket : assignment) {
    bucket = static_cast<int32_t>(rng.NextBounded(problem.num_buckets));
  }
  const double base = EvaluateObjective(problem, assignment).estimation_error;
  HashingProblem shifted = problem;
  for (double& f : shifted.frequencies) f += 100.0;
  EXPECT_NEAR(EvaluateObjective(shifted, assignment).estimation_error, base,
              1e-6);
}

TEST(OptPropertyTest, IsolatingOneElementNeverIncreasesCost) {
  // Moving any single element to its own empty bucket cannot increase
  // either error term: |a - mu| + |b - mu| >= |a - b| style cancellation
  // gives cost(S \ {x}) <= cost(S) for the estimation term, and the
  // element's similarity pairs simply vanish. This singleton-split
  // monotonicity is exactly what makes "more buckets never hurt" true
  // (see DpTest.MoreBucketsNeverIncreaseCost).
  const HashingProblem problem = testutil::RandomProblem(30, 8, 0.5, 2, 21);
  Rng rng(22);
  Assignment assignment(problem.NumElements());
  // Use buckets 0..5, keeping 6 and 7 free as isolation targets.
  for (auto& bucket : assignment) {
    bucket = static_cast<int32_t>(rng.NextBounded(6));
  }
  const ObjectiveValue base = EvaluateObjective(problem, assignment);
  for (size_t element = 0; element < problem.NumElements(); ++element) {
    Assignment isolated = assignment;
    isolated[element] = 6;
    const ObjectiveValue value = EvaluateObjective(problem, isolated);
    EXPECT_LE(value.estimation_error, base.estimation_error + 1e-9);
    EXPECT_LE(value.similarity_error, base.similarity_error + 1e-7);
  }
}

TEST(OptPropertyTest, GeneralBucketMergesCanDecreaseEstimationError) {
  // A documented quirk of Problem (1)'s mean-centred L1 cost: because the
  // bucket mean is NOT the L1-optimal centre, merging two buckets can
  // occasionally *reduce* the total estimation error (the merged mean can
  // sit closer to both groups' medians). Only singleton splits carry a
  // monotonicity guarantee. This is also why the quadrangle inequality
  // fails for the mean-centred interval cost (interval_cost_test).
  const HashingProblem problem = testutil::RandomProblem(30, 6, 1.0, 0, 21);
  Rng rng(22);
  bool found_decrease = false;
  for (int restart = 0; restart < 200 && !found_decrease; ++restart) {
    Assignment assignment(problem.NumElements());
    for (auto& bucket : assignment) {
      bucket = static_cast<int32_t>(rng.NextBounded(problem.num_buckets));
    }
    const double base = EvaluateObjective(problem, assignment).overall;
    for (int32_t from = 0; from < 6 && !found_decrease; ++from) {
      for (int32_t into = 0; into < 6; ++into) {
        if (from == into) continue;
        Assignment merged = assignment;
        for (auto& bucket : merged) {
          if (bucket == from) bucket = into;
        }
        if (EvaluateObjective(problem, merged).overall < base - 1e-9) {
          found_decrease = true;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(found_decrease);
}

}  // namespace
}  // namespace opthash::opt

// Container-level tests for the versioned binary snapshot format
// (src/io/snapshot.h): header/section-table validation, CRC rejection of
// corruption, and the mmap-backed zero-copy open path.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "io/snapshot.h"

namespace opthash::io {
namespace {

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

SnapshotWriter TwoSectionWriter() {
  SnapshotWriter writer;
  writer.AddSection(SectionType::kCountMinSketch,
                    Payload({1, 2, 3, 4, 5, 6, 7, 8, 9}));
  writer.AddSection(SectionType::kFeaturizer, Payload({0xAA, 0xBB}));
  return writer;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotContainerTest, RoundTripSections) {
  const std::vector<uint8_t> bytes = TwoSectionWriter().Finish();
  auto reader = SnapshotReader::FromBytes(bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const SnapshotView& view = reader.value().view();
  ASSERT_EQ(view.sections().size(), 2u);
  EXPECT_EQ(view.sections()[0].type, SectionType::kCountMinSketch);
  EXPECT_EQ(view.sections()[0].payload.size(), 9u);
  EXPECT_EQ(view.sections()[0].payload[4], 5);
  EXPECT_EQ(view.sections()[1].type, SectionType::kFeaturizer);
  EXPECT_EQ(view.sections()[1].payload.size(), 2u);
  EXPECT_NE(view.Find(SectionType::kFeaturizer), nullptr);
  EXPECT_EQ(view.Find(SectionType::kSpaceSaving), nullptr);
}

TEST(SnapshotContainerTest, EveryRegisteredSectionTypeRoundTripsWithAName) {
  // Container-level sweep over the full SectionType registry: each type
  // survives a write/parse round trip and renders a human-readable name
  // (restore errors quote it; an "unknown" name means the registry and
  // SectionTypeName drifted apart). The list is what docs/FORMATS.md
  // documents — tools/lint/opthash_lint.py pins enum <-> doc <-> test.
  const SectionType all[] = {
      SectionType::kCountMinSketch, SectionType::kCountSketch,
      SectionType::kAmsSketch,      SectionType::kLearnedCountMin,
      SectionType::kMisraGries,     SectionType::kSpaceSaving,
      SectionType::kWindowedSketch, SectionType::kLogisticRegression,
      SectionType::kDecisionTree,   SectionType::kRandomForest,
      SectionType::kOptHashEstimator, SectionType::kFeaturizer,
  };
  SnapshotWriter writer;
  uint8_t marker = 1;
  for (const SectionType type : all) {
    writer.AddSection(type, {marker++});
    EXPECT_STRNE(SectionTypeName(type), "unknown")
        << static_cast<uint32_t>(type);
  }
  auto reader = SnapshotReader::FromBytes(writer.Finish());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const SnapshotView& view = reader.value().view();
  ASSERT_EQ(view.sections().size(), std::size(all));
  for (size_t i = 0; i < std::size(all); ++i) {
    EXPECT_EQ(view.sections()[i].type, all[i]);
    ASSERT_EQ(view.sections()[i].payload.size(), 1u);
    EXPECT_EQ(view.sections()[i].payload[0], i + 1);
  }
}

TEST(SnapshotContainerTest, PayloadsAreEightAligned) {
  const std::vector<uint8_t> bytes = TwoSectionWriter().Finish();
  auto reader = SnapshotReader::FromBytes(bytes);
  ASSERT_TRUE(reader.ok());
  for (const SnapshotSection& section : reader.value().view().sections()) {
    const auto offset = static_cast<size_t>(section.payload.data() -
                                            bytes.data());
    EXPECT_EQ(offset % kSectionAlignment, 0u);
  }
}

TEST(SnapshotContainerTest, EmptyContainerIsValid) {
  SnapshotWriter writer;
  auto reader = SnapshotReader::FromBytes(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().view().sections().empty());
}

TEST(SnapshotContainerTest, RejectsBadMagic) {
  std::vector<uint8_t> bytes = TwoSectionWriter().Finish();
  bytes[0] = 'X';
  EXPECT_FALSE(SnapshotReader::FromBytes(bytes).ok());
}

TEST(SnapshotContainerTest, RejectsFutureVersion) {
  std::vector<uint8_t> bytes = TwoSectionWriter().Finish();
  bytes[8] = 99;  // Version field.
  // The header CRC also breaks, but even a re-CRC'd future version must be
  // refused; check the error mentions one of the two.
  auto reader = SnapshotReader::FromBytes(bytes);
  ASSERT_FALSE(reader.ok());
}

TEST(SnapshotContainerTest, RejectsHeaderCorruption) {
  std::vector<uint8_t> bytes = TwoSectionWriter().Finish();
  bytes[12] ^= 0x01;  // Section count.
  auto reader = SnapshotReader::FromBytes(bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("CRC"), std::string::npos);
}

TEST(SnapshotContainerTest, RejectsSectionTableCorruption) {
  std::vector<uint8_t> bytes = TwoSectionWriter().Finish();
  bytes[kSnapshotHeaderSize + 8] ^= 0x01;  // First section's offset.
  EXPECT_FALSE(SnapshotReader::FromBytes(bytes).ok());
}

TEST(SnapshotContainerTest, RejectsPayloadCorruption) {
  std::vector<uint8_t> bytes = TwoSectionWriter().Finish();
  bytes.back() ^= 0x80;  // Last payload byte.
  auto reader = SnapshotReader::FromBytes(bytes);
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("CRC"), std::string::npos);
}

TEST(SnapshotContainerTest, RejectsTruncation) {
  std::vector<uint8_t> bytes = TwoSectionWriter().Finish();
  for (size_t keep : {bytes.size() - 1, bytes.size() / 2, size_t{40},
                      size_t{31}, size_t{8}, size_t{0}}) {
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + static_cast<long>(keep));
    EXPECT_FALSE(SnapshotReader::FromBytes(cut).ok()) << keep;
  }
}

TEST(SnapshotContainerTest, WriteToFileThenOpen) {
  const std::string path = ::testing::TempDir() + "/snapshot_io_file.bin";
  ASSERT_TRUE(TwoSectionWriter().WriteToFile(path).ok());
  auto reader = SnapshotReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().view().sections().size(), 2u);
}

TEST(SnapshotContainerTest, OpenMissingFileIsNotFound) {
  auto reader = SnapshotReader::Open(::testing::TempDir() + "/nope.bin");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(MappedSnapshotTest, OpenServesSectionsFromMapping) {
  const std::string path = ::testing::TempDir() + "/snapshot_io_mmap.bin";
  ASSERT_TRUE(TwoSectionWriter().WriteToFile(path).ok());
  auto mapped = MappedSnapshot::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const SnapshotSection* section =
      mapped.value().view().Find(SectionType::kCountMinSketch);
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->payload.size(), 9u);
  EXPECT_EQ(section->payload[0], 1);
  EXPECT_TRUE(mapped.value().view().VerifyPayloadCrcs().ok());
}

TEST(MappedSnapshotTest, MoveKeepsViewValid) {
  const std::string path = ::testing::TempDir() + "/snapshot_io_move.bin";
  ASSERT_TRUE(TwoSectionWriter().WriteToFile(path).ok());
  auto mapped = MappedSnapshot::Open(path);
  ASSERT_TRUE(mapped.ok());
  MappedSnapshot moved = std::move(mapped).value();
  const SnapshotSection* section =
      moved.view().Find(SectionType::kFeaturizer);
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->payload[1], 0xBB);
}

TEST(MappedSnapshotTest, LazyOpenStillCatchesPayloadCorruptionOnVerify) {
  const std::string path = ::testing::TempDir() + "/snapshot_io_corrupt.bin";
  std::vector<uint8_t> bytes = TwoSectionWriter().Finish();
  bytes.back() ^= 0x01;  // Corrupt a payload byte, not header/table.
  WriteFile(path, bytes);
  // Default open skips payload CRCs (zero-copy hot path)…
  auto lazy = MappedSnapshot::Open(path);
  ASSERT_TRUE(lazy.ok());
  EXPECT_FALSE(lazy.value().view().VerifyPayloadCrcs().ok());
  // …but the eager flag rejects at open.
  EXPECT_FALSE(MappedSnapshot::Open(path, /*verify_payload_crcs=*/true).ok());
}

TEST(MappedSnapshotTest, RejectsHeaderCorruptionEvenLazily) {
  const std::string path = ::testing::TempDir() + "/snapshot_io_badhdr.bin";
  std::vector<uint8_t> bytes = TwoSectionWriter().Finish();
  bytes[9] ^= 0x01;  // Inside the version field.
  WriteFile(path, bytes);
  EXPECT_FALSE(MappedSnapshot::Open(path).ok());
}

}  // namespace
}  // namespace opthash::io

// In-process serving daemon tests: a real Server on a real Unix-domain
// socket, driven through the real Client — ingest/query equivalence with
// offline sketches, served-bundle answers identical to the offline
// estimator, stats, read-only mmap serving, malformed-frame handling at
// the socket layer, checkpoint/resume equivalence, and a
// snapshot-under-load consistency test.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/opt_hash_estimator.h"
#include "io/model_io.h"
#include "io/sketch_snapshot.h"
#include "server/client.h"
#include "server/server.h"
#include "server/socket_io.h"
#include "server/tcp_listener.h"
#include "sketch/count_min_sketch.h"
#include "sketch/kernels/simd_dispatch.h"
#include "sketch/space_saving.h"
#include "sketch/top_k.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace opthash::server {
namespace {

// Socket paths must stay under sun_path's ~107 bytes, so they live in
// /tmp directly rather than under the (possibly deep) build tree.
std::string FreshSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/opthash_srv_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::string FreshDir(const std::string& stem) {
  // Pid-qualified: stale directories from a previous test run must not
  // leak rotated snapshots into this one.
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/server_" + stem + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

std::vector<uint64_t> ZipfishKeys(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto r = static_cast<uint64_t>(rng.NextUint64());
    keys.push_back(r % ((r % 5 == 0) ? 5000 : 60));
  }
  return keys;
}

std::unique_ptr<ServedModel> FreshCms(size_t width = 512, size_t depth = 4,
                                      uint64_t seed = 3) {
  FreshSketchSpec spec;
  spec.kind = "cms";
  spec.width = width;
  spec.depth = depth;
  spec.seed = seed;
  auto model = CreateServedSketch(spec);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

class RunningServer {
 public:
  explicit RunningServer(std::unique_ptr<ServedModel> model,
                         RotationConfig rotation = {}) {
    config_.socket_path = FreshSocketPath();
    config_.rotation = std::move(rotation);
    server_ = std::make_unique<Server>(config_, std::move(model));
  }

  ~RunningServer() { server_->RequestShutdown(); }

  Status Start() { return server_->Start(); }
  const std::string& socket() const { return config_.socket_path; }
  Server& server() { return *server_; }

  Client MustConnect() {
    auto client = Client::Connect(socket());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

 private:
  ServerConfig config_;
  std::unique_ptr<Server> server_;
};

TEST(ServerTest, PingAndStatsOnFreshServer) {
  RunningServer running(FreshCms());
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();
  EXPECT_TRUE(client.Ping().ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().items_ingested, 0u);
  EXPECT_EQ(stats.value().snapshots_written, 0u);
  EXPECT_LT(stats.value().snapshot_age_seconds, 0.0);
  EXPECT_GE(stats.value().uptime_seconds, 0.0);
  EXPECT_GE(stats.value().sessions_accepted, 1u);
}

TEST(ServerTest, ServedAnswersMatchOfflineSketchExactly) {
  RunningServer running(FreshCms());
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();

  const std::vector<uint64_t> keys = ZipfishKeys(20000, 11);
  auto acked = client.Ingest(keys);
  ASSERT_TRUE(acked.ok()) << acked.status().ToString();
  EXPECT_EQ(acked.value(), keys.size());

  // The offline reference: the identical sketch fed the identical stream.
  sketch::CountMinSketch reference(512, 4, 3);
  reference.UpdateBatch(keys);

  std::vector<uint64_t> queries;
  for (uint64_t key = 0; key < 200; ++key) queries.push_back(key);
  std::vector<double> served;
  ASSERT_TRUE(client.Query(queries, served).ok());
  ASSERT_EQ(served.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(served[i], static_cast<double>(reference.Estimate(queries[i])))
        << "key " << queries[i];
  }

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().items_ingested, keys.size());
  EXPECT_EQ(stats.value().model_total_items, keys.size());
  EXPECT_EQ(stats.value().queries_served, queries.size());
  EXPECT_EQ(stats.value().query_requests, 1u);
  EXPECT_GT(stats.value().query_p99_micros, 0.0);
}

TEST(ServerTest, ServedBundleMatchesOfflineEstimator) {
  // Train a small bundle, serve it, and require byte-identical answers to
  // the in-process estimator queried the way the daemon queries it
  // (key-only = blank-text records through BundleQueryEngine).
  // Built exactly like the train verb: prefix features come from the
  // bundle's own featurizer, so classifier and featurizer dimensions
  // agree (what every real bundle guarantees).
  io::ModelBundle bundle;
  bundle.featurizer = stream::BagOfWordsFeaturizer(32);
  std::vector<std::pair<std::string, double>> corpus;
  for (size_t i = 0; i < 150; ++i) {
    corpus.push_back({"item word" + std::to_string(i % 11),
                      (i % 7 == 0) ? 90.0 + i : 2.0});
  }
  bundle.featurizer.Fit(corpus);
  core::OptHashConfig config;
  config.total_buckets = 200;
  config.id_ratio = 0.5;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kCart;
  std::vector<core::PrefixElement> prefix;
  for (size_t i = 0; i < 150; ++i) {
    prefix.push_back({.id = 100 + i,
                      .frequency = corpus[i].second,
                      .features = bundle.featurizer.Featurize(
                          corpus[i].first)});
  }
  auto trained = core::OptHashEstimator::Train(config, prefix);
  ASSERT_TRUE(trained.ok());
  bundle.estimator = std::move(trained).value();

  const std::string path = ::testing::TempDir() + "/served_bundle.bin";
  ASSERT_TRUE(
      io::SaveModelBundle(path, bundle, io::SnapshotFormat::kBinary).ok());

  auto opened = OpenServedModel(path, /*use_mmap=*/false);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_FALSE(opened.value().mmap_used);
  RunningServer running(std::move(opened.value().model));
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();

  std::vector<uint64_t> queries;
  for (uint64_t id = 90; id < 280; ++id) queries.push_back(id);
  std::vector<double> served;
  ASSERT_TRUE(client.Query(queries, served).ok());

  io::BundleQueryEngine engine(bundle);
  std::vector<stream::TraceRecord> records(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) records[i].id = queries[i];
  std::vector<double> offline(queries.size());
  engine.EstimateBlock(
      Span<const stream::TraceRecord>(records.data(), records.size()),
      Span<double>(offline.data(), offline.size()));
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(served[i], offline[i]) << "id " << queries[i];
  }
}

TEST(ServerTest, MappedBundleServesReadOnly) {
  // Reuse the binary bundle from the previous test's path layout.
  io::ModelBundle bundle;
  bundle.featurizer = stream::BagOfWordsFeaturizer(16);
  bundle.featurizer.Fit({{"a", 3.0}});
  core::OptHashConfig config;
  config.total_buckets = 80;
  config.id_ratio = 0.5;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kNone;
  std::vector<core::PrefixElement> prefix;
  for (size_t i = 0; i < 40; ++i) {
    prefix.push_back({.id = i, .frequency = 1.0 + i, .features = {0.0}});
  }
  auto trained = core::OptHashEstimator::Train(config, prefix);
  ASSERT_TRUE(trained.ok());
  bundle.estimator = std::move(trained).value();
  const std::string path = ::testing::TempDir() + "/served_mapped.bin";
  ASSERT_TRUE(
      io::SaveModelBundle(path, bundle, io::SnapshotFormat::kBinary).ok());

  auto opened = OpenServedModel(path, /*use_mmap=*/true);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened.value().mmap_used);
  EXPECT_TRUE(opened.value().model->ReadOnly());
  RunningServer running(std::move(opened.value().model));
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();

  // Stored-id queries answer exactly like the full estimator...
  std::vector<uint64_t> queries;
  for (uint64_t id = 0; id < 40; ++id) queries.push_back(id);
  std::vector<double> served;
  ASSERT_TRUE(client.Query(queries, served).ok());
  for (uint64_t id = 0; id < served.size(); ++id) {
    EXPECT_EQ(served[id],
              bundle.estimator->Estimate({id, nullptr}))
        << "id " << id;
  }

  // ...while ingest and snapshot are rejected as FailedPrecondition and
  // the session survives to answer more queries.
  const std::vector<uint64_t> some_keys = {1, 2, 3};
  auto ingest = client.Ingest(some_keys);
  ASSERT_FALSE(ingest.ok());
  EXPECT_EQ(ingest.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, RotationRequiresMutableModel) {
  io::ModelBundle bundle;
  bundle.featurizer = stream::BagOfWordsFeaturizer(16);
  bundle.featurizer.Fit({{"a", 1.0}});
  core::OptHashConfig config;
  config.total_buckets = 40;
  config.id_ratio = 0.5;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kNone;
  std::vector<core::PrefixElement> prefix;
  for (size_t i = 0; i < 20; ++i) {
    prefix.push_back({.id = i, .frequency = 1.0, .features = {0.0}});
  }
  auto trained = core::OptHashEstimator::Train(config, prefix);
  ASSERT_TRUE(trained.ok());
  bundle.estimator = std::move(trained).value();
  const std::string path = ::testing::TempDir() + "/served_ro_rot.bin";
  ASSERT_TRUE(
      io::SaveModelBundle(path, bundle, io::SnapshotFormat::kBinary).ok());
  auto opened = OpenServedModel(path, /*use_mmap=*/true);
  ASSERT_TRUE(opened.ok());
  RotationConfig rotation;
  rotation.dir = FreshDir("ro");
  RunningServer running(std::move(opened.value().model), rotation);
  const Status started = running.Start();
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kFailedPrecondition);
}

TEST(ServerTest, CheckpointRestartResumesExactly) {
  // Serve, ingest half, snapshot, "crash" (tear down the server), start a
  // NEW server from the rotated snapshot, ingest the other half: counts
  // must equal one unbroken ingestion.
  const std::vector<uint64_t> keys = ZipfishKeys(30000, 21);
  const size_t half = keys.size() / 2;
  RotationConfig rotation;
  rotation.dir = FreshDir("resume");

  {
    RunningServer running(FreshCms(), rotation);
    ASSERT_TRUE(running.Start().ok());
    Client client = running.MustConnect();
    ASSERT_TRUE(
        client
            .Ingest(Span<const uint64_t>(keys.data(), half))
            .ok());
    auto sequence = client.Snapshot();
    ASSERT_TRUE(sequence.ok());
    EXPECT_EQ(sequence.value(), 1u);
    // No clean shutdown: the server object is torn down with state only
    // in the rotated snapshot, like a kill -9.
  }

  auto latest = SnapshotRotator::FindLatestSnapshot(rotation.dir);
  ASSERT_TRUE(latest.ok());
  auto opened = OpenServedModel(latest.value(), /*use_mmap=*/false);
  ASSERT_TRUE(opened.ok());
  RunningServer resumed(std::move(opened.value().model), rotation);
  ASSERT_TRUE(resumed.Start().ok());
  Client client = resumed.MustConnect();
  ASSERT_TRUE(client
                  .Ingest(Span<const uint64_t>(keys.data() + half,
                                               keys.size() - half))
                  .ok());

  sketch::CountMinSketch unbroken(512, 4, 3);
  unbroken.UpdateBatch(keys);
  std::vector<uint64_t> queries;
  for (uint64_t key = 0; key < 100; ++key) queries.push_back(key);
  std::vector<double> served;
  ASSERT_TRUE(client.Query(queries, served).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(served[i],
              static_cast<double>(unbroken.Estimate(queries[i])))
        << "key " << queries[i];
  }
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().model_total_items, keys.size());
}

TEST(ServerTest, SnapshotUnderLoadRestoresConsistentCounts) {
  // Writers hammer one key in fixed-size request blocks while a snapshot
  // is taken mid-flight. The ingest block is the atomicity unit, so the
  // rotated snapshot must hold an exact multiple of the block size, its
  // own total_count must equal the single key's estimate (one key only),
  // and the total must be a plausible prefix of what was sent.
  constexpr uint64_t kKey = 424242;
  constexpr size_t kBlock = 10;
  constexpr size_t kRequestsPerWriter = 60;
  constexpr size_t kWriters = 3;
  RotationConfig rotation;
  rotation.dir = FreshDir("underload");

  RunningServer running(FreshCms(2048, 4, 9), rotation);
  ASSERT_TRUE(running.Start().ok());

  std::vector<uint64_t> block(kBlock, kKey);
  std::vector<std::thread> writers;
  std::atomic<bool> go{false};
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      auto client = Client::Connect(running.socket());
      ASSERT_TRUE(client.ok());
      while (!go.load()) std::this_thread::yield();
      for (size_t r = 0; r < kRequestsPerWriter; ++r) {
        auto acked = client.value().Ingest(block);
        ASSERT_TRUE(acked.ok());
      }
    });
  }
  Client snapshotter = running.MustConnect();
  go.store(true);
  // Rotate twice while the writers are mid-stream.
  auto first = snapshotter.Snapshot();
  ASSERT_TRUE(first.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto second = snapshotter.Snapshot();
  ASSERT_TRUE(second.ok());
  for (std::thread& writer : writers) writer.join();

  // Every rotated snapshot must be internally consistent: an exact
  // multiple of the request block, never more than what was sent, and
  // with estimate == total (single-key stream in an ample sketch).
  auto rotated = SnapshotRotator::ListRotated(rotation.dir);
  ASSERT_TRUE(rotated.ok());
  ASSERT_GE(rotated.value().size(), 2u);
  for (const auto& [sequence, name] : rotated.value()) {
    auto restored = io::LoadSketchSnapshot<sketch::CountMinSketch>(
        rotation.dir + "/" + name);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    const uint64_t total = restored.value().total_count();
    EXPECT_EQ(total % kBlock, 0u) << name << " split an ingest block";
    EXPECT_LE(total, kWriters * kRequestsPerWriter * kBlock);
    EXPECT_EQ(restored.value().Estimate(kKey), total) << name;
  }

  // And the final state serves the full stream.
  Client reader = running.MustConnect();
  std::vector<double> estimate;
  const std::vector<uint64_t> one_key = {kKey};
  ASSERT_TRUE(reader.Query(one_key, estimate).ok());
  EXPECT_EQ(estimate[0],
            static_cast<double>(kWriters * kRequestsPerWriter * kBlock));
}

TEST(ServerTest, QuerySpanLargerThanOneFrameIsChunked) {
  // A span beyond one frame's key capacity must split into several
  // requests inside the client (not abort on the encoder's frame cap)
  // and come back index-aligned.
  RunningServer running(FreshCms());
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();
  const std::vector<uint64_t> some_keys = {5, 5, 5};
  ASSERT_TRUE(client.Ingest(some_keys).ok());

  std::vector<uint64_t> big(kMaxKeysPerFrame + 1000, 0);
  for (size_t i = 0; i < big.size(); ++i) big[i] = i % 7;
  std::vector<double> out;
  ASSERT_TRUE(client.Query(big, out).ok());
  ASSERT_EQ(out.size(), big.size());
  // Same key, same answer — including across the chunk boundary.
  EXPECT_EQ(out[5], 3.0);
  EXPECT_EQ(out[big.size() - 2], out[(big.size() - 2) % 7]);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().query_requests, 2u);
  EXPECT_EQ(stats.value().queries_served, big.size());
}

TEST(ServerTest, MalformedFramesGetErrorAndSessionCloses) {
  RunningServer running(FreshCms());
  ASSERT_TRUE(running.Start().ok());

  // Raw socket: send a garbage type byte in a well-formed frame.
  auto fd = ConnectUnix(running.socket());
  ASSERT_TRUE(fd.ok());
  const uint8_t garbage_frame[] = {1, 0, 0, 0, 73};
  ASSERT_TRUE(WriteAll(fd.value(),
                       Span<const uint8_t>(garbage_frame, 5))
                  .ok());
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFramePayload(fd.value(), payload).ok());
  Status remote;
  ASSERT_TRUE(
      DecodeErrorResponse(Span<const uint8_t>(payload.data(), payload.size()),
                          remote)
          .ok());
  EXPECT_EQ(remote.code(), StatusCode::kInvalidArgument);
  // The server hangs up after a protocol error.
  EXPECT_EQ(ReadFramePayload(fd.value(), payload).code(),
            StatusCode::kNotFound);
  CloseSocket(fd.value());

  // An oversized length prefix is rejected without ballooning memory.
  auto fd2 = ConnectUnix(running.socket());
  ASSERT_TRUE(fd2.ok());
  const uint8_t huge_header[] = {0xFF, 0xFF, 0xFF, 0x7F, 1};
  ASSERT_TRUE(
      WriteAll(fd2.value(), Span<const uint8_t>(huge_header, 5)).ok());
  ASSERT_TRUE(ReadFramePayload(fd2.value(), payload).ok());
  ASSERT_TRUE(
      DecodeErrorResponse(Span<const uint8_t>(payload.data(), payload.size()),
                          remote)
          .ok());
  EXPECT_EQ(remote.code(), StatusCode::kInvalidArgument);
  CloseSocket(fd2.value());

  // A truncated frame (count promises more keys than sent) also errors.
  auto fd3 = ConnectUnix(running.socket());
  ASSERT_TRUE(fd3.ok());
  const uint8_t short_query[] = {5, 0, 0, 0, 1, 200, 0, 0, 0};
  ASSERT_TRUE(
      WriteAll(fd3.value(), Span<const uint8_t>(short_query, 9)).ok());
  ASSERT_TRUE(ReadFramePayload(fd3.value(), payload).ok());
  ASSERT_TRUE(
      DecodeErrorResponse(Span<const uint8_t>(payload.data(), payload.size()),
                          remote)
          .ok());
  EXPECT_EQ(remote.code(), StatusCode::kInvalidArgument);
  CloseSocket(fd3.value());

  // The daemon survived all three hostile sessions.
  Client client = running.MustConnect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST(ServerTest, ShutdownRequestStopsTheServer) {
  RunningServer running(FreshCms());
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();
  ASSERT_TRUE(client.Shutdown().ok());
  // Wait() must return promptly once the shutdown request lands.
  running.server().Wait();
  running.server().RequestShutdown();
  EXPECT_FALSE(running.server().running());
  // New connections are refused once the socket is gone.
  EXPECT_FALSE(Client::Connect(running.socket()).ok());
}

TEST(ServerTest, TcpServesByteIdenticalToUnix) {
  // One daemon, both transports. Every answer — including the error
  // payload for a hostile frame — must be the same bytes on TCP as on
  // the Unix socket.
  ServerConfig config;
  config.socket_path = FreshSocketPath();
  config.listen_address = "127.0.0.1:0";  // Kernel-picked port.
  Server server(config, FreshCms());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.tcp_port(), 0);
  const std::string tcp_target =
      "127.0.0.1:" + std::to_string(server.tcp_port());

  auto over_unix = Client::Connect(config.socket_path);
  ASSERT_TRUE(over_unix.ok()) << over_unix.status().ToString();
  auto over_tcp = Client::Connect(tcp_target);
  ASSERT_TRUE(over_tcp.ok()) << over_tcp.status().ToString();

  // Ingest over TCP; both transports then see the same model.
  const std::vector<uint64_t> keys = ZipfishKeys(20000, 31);
  auto acked = over_tcp.value().Ingest(keys);
  ASSERT_TRUE(acked.ok()) << acked.status().ToString();
  EXPECT_EQ(acked.value(), keys.size());

  std::vector<uint64_t> queries;
  for (uint64_t key = 0; key < 300; ++key) queries.push_back(key);
  std::vector<double> unix_answers;
  std::vector<double> tcp_answers;
  ASSERT_TRUE(over_unix.value().Query(queries, unix_answers).ok());
  ASSERT_TRUE(over_tcp.value().Query(queries, tcp_answers).ok());
  EXPECT_EQ(unix_answers, tcp_answers);

  // Raw bytes: the identical garbage frame draws the identical error
  // payload, then the hangup, on both transports.
  const uint8_t garbage_frame[] = {1, 0, 0, 0, 73};
  std::vector<uint8_t> unix_error;
  std::vector<uint8_t> tcp_error;
  {
    auto fd = ConnectUnix(config.socket_path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        WriteAll(fd.value(), Span<const uint8_t>(garbage_frame, 5)).ok());
    ASSERT_TRUE(ReadFramePayload(fd.value(), unix_error).ok());
    std::vector<uint8_t> extra;
    EXPECT_EQ(ReadFramePayload(fd.value(), extra).code(),
              StatusCode::kNotFound);
    CloseSocket(fd.value());
  }
  {
    auto address = ParseHostPort(tcp_target);
    ASSERT_TRUE(address.ok());
    auto fd = ConnectTcp(address.value());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        WriteAll(fd.value(), Span<const uint8_t>(garbage_frame, 5)).ok());
    ASSERT_TRUE(ReadFramePayload(fd.value(), tcp_error).ok());
    std::vector<uint8_t> extra;
    EXPECT_EQ(ReadFramePayload(fd.value(), extra).code(),
              StatusCode::kNotFound);
    CloseSocket(fd.value());
  }
  EXPECT_EQ(unix_error, tcp_error);

  // Shutdown over TCP works like shutdown over Unix.
  ASSERT_TRUE(over_tcp.value().Shutdown().ok());
  server.Wait();
  server.RequestShutdown();
  EXPECT_FALSE(Client::Connect(tcp_target).ok());
}

std::unique_ptr<ServedModel> FreshSpaceSaving(size_t capacity = 256) {
  FreshSketchSpec spec;
  spec.kind = "ss";
  spec.capacity = capacity;
  auto model = CreateServedSketch(spec);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

TEST(ServerTest, ServedTopKMatchesExactCountsOnAmpleSummary) {
  // Distinct keys well under capacity: every Space-Saving counter is
  // exact, so the served top-k must report the true counts, all
  // guaranteed, in canonical order — whatever thread count the server's
  // sharded ingest used.
  RunningServer running(FreshSpaceSaving());
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();

  // Key j (1..50) arrives 101 - j times.
  std::vector<uint64_t> keys;
  for (uint64_t key = 1; key <= 50; ++key) {
    for (uint64_t copy = 0; copy < 101 - key; ++copy) keys.push_back(key);
  }
  ASSERT_TRUE(client.Ingest(keys).ok());

  std::vector<sketch::HeavyHitter> hitters;
  ASSERT_TRUE(client.TopK(10, hitters).ok());
  ASSERT_EQ(hitters.size(), 10u);
  for (size_t i = 0; i < hitters.size(); ++i) {
    EXPECT_EQ(hitters[i].id, i + 1);
    EXPECT_EQ(hitters[i].estimate, static_cast<double>(100 - i));
    EXPECT_EQ(hitters[i].error_bound, 0.0);
    EXPECT_TRUE(hitters[i].guaranteed);
  }

  // The topk request is its own stats counter, not a query.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().query_requests, 0u);
}

TEST(ServerTest, TopKOnKindWithoutCandidatesFailsAndSessionSurvives) {
  RunningServer running(FreshCms());
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();
  const std::vector<uint64_t> keys = {1, 1, 2};
  ASSERT_TRUE(client.Ingest(keys).ok());

  std::vector<sketch::HeavyHitter> hitters;
  const Status status = client.TopK(5, hitters);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("cannot answer top-k"), std::string::npos);

  // A semantic failure is not a protocol violation: the same connection
  // keeps serving.
  EXPECT_TRUE(client.Ping().ok());
  std::vector<double> estimates;
  const std::vector<uint64_t> one_key = {1};
  ASSERT_TRUE(client.Query(one_key, estimates).ok());
  EXPECT_EQ(estimates[0], 2.0);
}

TEST(ServerTest, ScopedRequestsServeDefaultIdAndRejectOthers) {
  RunningServer running(FreshSpaceSaving());
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();
  const std::vector<uint64_t> keys = {7, 7, 7, 9};
  ASSERT_TRUE(client.Ingest(keys).ok());

  // A non-default model id is NotFound until the registry lands...
  client.set_model_id(31337);
  std::vector<sketch::HeavyHitter> hitters;
  Status status = client.TopK(2, hitters);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_NE(status.message().find("31337"), std::string::npos);
  status = client.Ping();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);

  // ...and the rejection leaves the session usable: back on the default
  // id, the same connection answers (enveloped or bare).
  client.set_model_id(0);
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(client.TopK(2, hitters).ok());
  ASSERT_EQ(hitters.size(), 2u);
  EXPECT_EQ(hitters[0].id, 7u);
  EXPECT_EQ(hitters[0].estimate, 3.0);
}

TEST(ServerTest, MetricsRendersPrometheusTextExposition) {
  RunningServer running(FreshSpaceSaving());
  ASSERT_TRUE(running.Start().ok());
  Client client = running.MustConnect();
  const std::vector<uint64_t> keys = {4, 4, 5};
  ASSERT_TRUE(client.Ingest(keys).ok());
  std::vector<double> estimates;
  const std::vector<uint64_t> one_key = {4};
  ASSERT_TRUE(client.Query(one_key, estimates).ok());
  std::vector<sketch::HeavyHitter> hitters;
  ASSERT_TRUE(client.TopK(1, hitters).ok());

  std::string text;
  ASSERT_TRUE(client.Metrics(text).ok());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  // Counters carry their ingest/query/topk traffic...
  EXPECT_NE(text.find("# HELP opthash_items_ingested_total"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE opthash_items_ingested_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("opthash_items_ingested_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("opthash_query_requests_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("opthash_topk_requests_total 1\n"), std::string::npos);
  // ...the durability/teardown failure counters exist (and are zero on a
  // healthy run) so operators can alert on them going nonzero.
  EXPECT_NE(text.find("opthash_snapshot_failures_total 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("opthash_teardown_errors_total 0\n"),
            std::string::npos);
  // ...gauges and the latency summary are present with their types.
  EXPECT_NE(text.find("# TYPE opthash_model_total_items gauge"),
            std::string::npos);
  EXPECT_NE(text.find("opthash_model_total_items 3.000000\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE opthash_query_latency_micros summary"),
            std::string::npos);
  EXPECT_NE(text.find("opthash_query_latency_micros{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("opthash_query_latency_micros{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("opthash_query_latency_micros_count"),
            std::string::npos);
  // ...and the kernel-tier info gauge names the active SIMD tier so a
  // scrape can alert on an unexpected "scalar" after a rollout.
  EXPECT_NE(text.find("# TYPE opthash_simd_tier_info gauge"),
            std::string::npos);
  const std::string tier_sample =
      std::string("opthash_simd_tier_info{tier=\"") +
      std::string(sketch::kernels::KernelTierName(
          sketch::kernels::ActiveKernelTier())) +
      "\"} 1\n";
  EXPECT_NE(text.find(tier_sample), std::string::npos);
}

TEST(ServerTest, ConcurrentQueriesWhileIngesting) {
  // Readers and a writer share the daemon; every answer must be a value
  // the key actually had (monotone non-decreasing for CMS).
  RunningServer running(FreshCms(4096, 4, 17));
  ASSERT_TRUE(running.Start().ok());
  constexpr uint64_t kKey = 7;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      auto client = Client::Connect(running.socket());
      ASSERT_TRUE(client.ok());
      std::vector<double> out;
      const std::vector<uint64_t> one_key = {kKey};
      double last = 0.0;
      while (!stop.load()) {
        ASSERT_TRUE(client.value().Query(one_key, out).ok());
        EXPECT_GE(out[0], last);  // Counts never go backwards.
        last = out[0];
      }
    });
  }
  Client writer = running.MustConnect();
  std::vector<uint64_t> block(100, kKey);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer.Ingest(block).ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  std::vector<double> out;
  const std::vector<uint64_t> one_key = {kKey};
  ASSERT_TRUE(writer.Query(one_key, out).ok());
  EXPECT_EQ(out[0], 5000.0);
}

}  // namespace
}  // namespace opthash::server

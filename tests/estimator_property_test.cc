// Property-based tests over the estimator pipeline: conservation laws,
// order-invariance, monotonicity and serialization fixed points that must
// hold for any stream.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/adaptive_estimator.h"
#include "core/baseline_estimators.h"
#include "core/opt_hash_estimator.h"

namespace opthash::core {
namespace {

std::vector<PrefixElement> RandomPrefix(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<PrefixElement> prefix;
  prefix.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const bool heavy = rng.NextBernoulli(0.2);
    prefix.push_back({.id = 1000 + i,
                      .frequency = heavy ? 40.0 + rng.NextDouble(0, 20)
                                         : 1.0 + rng.NextDouble(0, 4),
                      .features = {heavy ? 3.0 + rng.NextGaussian() * 0.3
                                         : -3.0 + rng.NextGaussian() * 0.3}});
  }
  return prefix;
}

OptHashEstimator TrainedEstimator(const std::vector<PrefixElement>& prefix,
                                  uint64_t seed) {
  OptHashConfig config;
  config.total_buckets = 60;
  config.id_ratio = 0.5;
  config.solver = SolverKind::kDp;
  config.classifier = ClassifierKind::kCart;
  config.seed = seed;
  auto result = OptHashEstimator::Train(config, prefix);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(EstimatorPropertyTest, BucketMassConservation) {
  // Sum of phi_j equals the sampled prefix mass at training time, and
  // grows by exactly one per tracked update.
  const auto prefix = RandomPrefix(40, 1);
  OptHashEstimator estimator = TrainedEstimator(prefix, 1);

  double sampled_mass = 0.0;
  for (const auto& [id, bucket] : estimator.table()) {
    for (const auto& element : prefix) {
      if (element.id == id) sampled_mass += element.frequency;
    }
  }
  auto total_phi = [&] {
    double total = 0.0;
    for (size_t j = 0; j < estimator.num_buckets(); ++j) {
      total += estimator.BucketFrequency(j);
    }
    return total;
  };
  EXPECT_NEAR(total_phi(), sampled_mass, 1e-9);

  Rng rng(2);
  size_t tracked_updates = 0;
  for (int t = 0; t < 500; ++t) {
    const uint64_t id = 1000 + rng.NextBounded(60);  // Some ids unknown.
    if (estimator.table().count(id) > 0) ++tracked_updates;
    estimator.Update({id, nullptr});
  }
  EXPECT_NEAR(total_phi(), sampled_mass + static_cast<double>(tracked_updates),
              1e-9);
}

TEST(EstimatorPropertyTest, UpdateOrderIrrelevance) {
  // phi_j is a sum, so any permutation of the same multiset of arrivals
  // yields identical estimates.
  const auto prefix = RandomPrefix(30, 3);
  OptHashEstimator a = TrainedEstimator(prefix, 3);
  OptHashEstimator b = TrainedEstimator(prefix, 3);

  Rng rng(4);
  std::vector<uint64_t> arrivals(400);
  for (auto& id : arrivals) id = 1000 + rng.NextBounded(40);
  for (uint64_t id : arrivals) a.Update({id, nullptr});
  rng.Shuffle(arrivals);
  for (uint64_t id : arrivals) b.Update({id, nullptr});

  for (uint64_t id = 1000; id < 1040; ++id) {
    EXPECT_DOUBLE_EQ(a.Estimate({id, nullptr}), b.Estimate({id, nullptr}));
  }
}

TEST(EstimatorPropertyTest, UnknownUpdatesAreNoOpsInStaticMode) {
  const auto prefix = RandomPrefix(20, 5);
  OptHashEstimator estimator = TrainedEstimator(prefix, 5);
  std::vector<double> estimates_before;
  for (uint64_t id = 1000; id < 1020; ++id) {
    estimates_before.push_back(estimator.Estimate({id, nullptr}));
  }
  for (uint64_t id = 500000; id < 500100; ++id) {
    estimator.Update({id, nullptr});
  }
  for (uint64_t id = 1000; id < 1020; ++id) {
    EXPECT_DOUBLE_EQ(estimator.Estimate({id, nullptr}),
                     estimates_before[id - 1000]);
  }
}

TEST(EstimatorPropertyTest, EstimatesAlwaysNonNegative) {
  const auto prefix = RandomPrefix(25, 6);
  OptHashEstimator static_estimator = TrainedEstimator(prefix, 6);
  std::vector<uint64_t> prefix_ids;
  for (const auto& element : prefix) prefix_ids.push_back(element.id);
  AdaptiveConfig adaptive_config;
  adaptive_config.expected_distinct = 500;
  AdaptiveOptHashEstimator adaptive(TrainedEstimator(prefix, 6),
                                    adaptive_config, prefix_ids);
  Rng rng(7);
  const std::vector<double> features = {rng.NextGaussian()};
  for (int t = 0; t < 2000; ++t) {
    const uint64_t id = rng.NextBounded(3000);
    const stream::StreamItem item{id, &features};
    static_estimator.Update(item);
    adaptive.Update(item);
    EXPECT_GE(static_estimator.Estimate(item), 0.0);
    EXPECT_GE(adaptive.Estimate(item), 0.0);
  }
}

TEST(EstimatorPropertyTest, CmsEstimateMonotoneOverTime) {
  CountMinEstimator estimator(256, 4, 8);
  Rng rng(9);
  double previous = estimator.Estimate({42, nullptr});
  for (int t = 0; t < 3000; ++t) {
    estimator.Update({rng.NextBounded(300), nullptr});
    const double current = estimator.Estimate({42, nullptr});
    EXPECT_GE(current, previous);
    previous = current;
  }
}

TEST(EstimatorPropertyTest, BloomMembershipIsMonotone) {
  const auto prefix = RandomPrefix(15, 10);
  std::vector<uint64_t> prefix_ids;
  for (const auto& element : prefix) prefix_ids.push_back(element.id);
  AdaptiveConfig config;
  config.expected_distinct = 1000;
  AdaptiveOptHashEstimator adaptive(TrainedEstimator(prefix, 10), config,
                                    prefix_ids);
  Rng rng(11);
  const std::vector<double> features = {0.0};
  std::vector<uint64_t> seen_ids;
  for (int t = 0; t < 500; ++t) {
    const uint64_t id = 7000 + rng.NextBounded(400);
    adaptive.Update({id, &features});
    seen_ids.push_back(id);
    // Every previously seen id must still test positive.
    for (size_t probe = 0; probe < seen_ids.size(); probe += 37) {
      EXPECT_TRUE(adaptive.bloom().MayContain(seen_ids[probe]));
    }
  }
}

TEST(EstimatorPropertyTest, SerializationIsAFixedPoint) {
  // serialize(deserialize(blob)) == blob — no information decays through a
  // round trip, even after live updates.
  const auto prefix = RandomPrefix(30, 12);
  OptHashEstimator estimator = TrainedEstimator(prefix, 12);
  Rng rng(13);
  for (int t = 0; t < 200; ++t) {
    estimator.Update({1000 + rng.NextBounded(40), nullptr});
  }
  const std::string blob = estimator.Serialize();
  auto restored = OptHashEstimator::Deserialize(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().Serialize(), blob);
}

TEST(EstimatorPropertyTest, MemoryBucketsStableUnderUpdates) {
  // Stream processing must not allocate per-element state in static mode.
  const auto prefix = RandomPrefix(20, 14);
  OptHashEstimator estimator = TrainedEstimator(prefix, 14);
  const size_t before = estimator.MemoryBuckets();
  Rng rng(15);
  for (int t = 0; t < 5000; ++t) {
    estimator.Update({rng.NextBounded(100000), nullptr});
  }
  EXPECT_EQ(estimator.MemoryBuckets(), before);
}

class EstimatorBudgetSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(EstimatorBudgetSweep, MemoryNeverExceedsBudget) {
  const auto prefix = RandomPrefix(200, 16);
  OptHashConfig config;
  config.total_buckets = GetParam();
  config.id_ratio = 0.3;
  config.solver = SolverKind::kDp;
  config.classifier = ClassifierKind::kNone;
  auto estimator = OptHashEstimator::Train(config, prefix);
  ASSERT_TRUE(estimator.ok());
  EXPECT_LE(estimator.value().MemoryBuckets(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Budgets, EstimatorBudgetSweep,
                         ::testing::Values(10, 50, 100, 300, 1000));

}  // namespace
}  // namespace opthash::core

#include "opt/bucket_stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "opt/problem.h"

namespace opthash::opt {
namespace {

// Brute-force reference implementations over explicit member lists.
double NaiveEstimationError(const std::vector<double>& freqs) {
  if (freqs.empty()) return 0.0;
  double mean = 0.0;
  for (double f : freqs) mean += f;
  mean /= static_cast<double>(freqs.size());
  double error = 0.0;
  for (double f : freqs) error += std::abs(f - mean);
  return error;
}

double NaiveSimilarityError(const std::vector<std::vector<double>>& xs) {
  double error = 0.0;
  for (const auto& a : xs) {
    for (const auto& b : xs) error += SquaredDistance(a, b);
  }
  return error;
}

TEST(BucketStatsTest, EmptyBucket) {
  BucketStats bucket(2);
  EXPECT_TRUE(bucket.empty());
  EXPECT_EQ(bucket.count(), 0u);
  EXPECT_DOUBLE_EQ(bucket.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.EstimationError(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.SimilarityError(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.Error(0.5), 0.0);
}

TEST(BucketStatsTest, SingleElement) {
  BucketStats bucket(2);
  bucket.Add(5.0, {1.0, 2.0});
  EXPECT_EQ(bucket.count(), 1u);
  EXPECT_DOUBLE_EQ(bucket.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(bucket.EstimationError(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.SimilarityError(), 0.0);
}

TEST(BucketStatsTest, TwoElementErrors) {
  BucketStats bucket(1);
  bucket.Add(2.0, {0.0});
  bucket.Add(6.0, {3.0});
  EXPECT_DOUBLE_EQ(bucket.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(bucket.EstimationError(), 4.0);  // |2-4| + |6-4|.
  EXPECT_DOUBLE_EQ(bucket.SimilarityError(), 18.0);  // 2 * 9 (ordered pairs).
}

TEST(BucketStatsTest, AddEstimationPreview) {
  BucketStats bucket(0);
  const std::vector<double> no_features;
  bucket.Add(1.0, no_features);
  bucket.Add(3.0, no_features);
  // Adding 8: mean becomes 4, error = 3 + 1 + 4 = 8.
  EXPECT_DOUBLE_EQ(bucket.EstimationErrorWith(8.0), 8.0);
  // Preview must not mutate.
  EXPECT_EQ(bucket.count(), 2u);
  EXPECT_DOUBLE_EQ(bucket.EstimationError(), 2.0);
}

TEST(BucketStatsTest, RemoveEstimationPreview) {
  BucketStats bucket(0);
  const std::vector<double> no_features;
  bucket.Add(1.0, no_features);
  bucket.Add(3.0, no_features);
  bucket.Add(8.0, no_features);
  // Removing 8 leaves {1,3}: mean 2, error 2.
  EXPECT_DOUBLE_EQ(bucket.EstimationErrorWithout(8.0), 2.0);
  EXPECT_EQ(bucket.count(), 3u);
}

TEST(BucketStatsTest, RemoveFromSingletonGivesZero) {
  BucketStats bucket(0);
  bucket.Add(7.0, {});
  EXPECT_DOUBLE_EQ(bucket.EstimationErrorWithout(7.0), 0.0);
}

TEST(BucketStatsTest, SimilarityDeltasMatchNaive) {
  Rng rng(1);
  BucketStats bucket(3);
  std::vector<std::vector<double>> members;
  for (int i = 0; i < 10; ++i) {
    std::vector<double> x = {rng.NextGaussian(), rng.NextGaussian(),
                             rng.NextGaussian()};
    // Preview before adding.
    double naive_delta = 0.0;
    for (const auto& m : members) naive_delta += 2.0 * SquaredDistance(x, m);
    EXPECT_NEAR(bucket.SimilarityDeltaAdd(x), naive_delta, 1e-9);
    bucket.Add(static_cast<double>(i), x);
    members.push_back(x);
    EXPECT_NEAR(bucket.SimilarityError(), NaiveSimilarityError(members), 1e-8);
  }
  // Remove previews.
  for (int i = 0; i < 5; ++i) {
    const auto& x = members.back();
    double naive_delta = 0.0;
    for (size_t k = 0; k + 1 < members.size(); ++k) {
      naive_delta -= 2.0 * SquaredDistance(x, members[k]);
    }
    EXPECT_NEAR(bucket.SimilarityDeltaRemove(x), naive_delta, 1e-8);
    bucket.Remove(static_cast<double>(members.size() - 1), x);
    members.pop_back();
    EXPECT_NEAR(bucket.SimilarityError(), NaiveSimilarityError(members), 1e-8);
  }
}

TEST(BucketStatsTest, RandomizedAddRemoveMatchesNaive) {
  // Property test: after any interleaving of adds/removes, the incremental
  // stats agree with the from-scratch references.
  Rng rng(2);
  BucketStats bucket(2);
  std::vector<double> freqs;
  std::vector<std::vector<double>> features;
  for (int step = 0; step < 300; ++step) {
    const bool add = freqs.empty() || rng.NextBernoulli(0.6);
    if (add) {
      const double f = static_cast<double>(rng.NextBounded(40));
      std::vector<double> x = {rng.NextGaussian(), rng.NextGaussian()};
      bucket.Add(f, x);
      freqs.push_back(f);
      features.push_back(x);
    } else {
      const size_t victim = rng.NextBounded(freqs.size());
      bucket.Remove(freqs[victim], features[victim]);
      freqs.erase(freqs.begin() + static_cast<long>(victim));
      features.erase(features.begin() + static_cast<long>(victim));
    }
    ASSERT_EQ(bucket.count(), freqs.size());
    EXPECT_NEAR(bucket.EstimationError(), NaiveEstimationError(freqs), 1e-7);
    EXPECT_NEAR(bucket.SimilarityError(), NaiveSimilarityError(features),
                1e-6);
    double mean = 0.0;
    for (double f : freqs) mean += f;
    if (!freqs.empty()) mean /= static_cast<double>(freqs.size());
    EXPECT_NEAR(bucket.Mean(), mean, 1e-9);
  }
}

TEST(BucketStatsTest, EstimationPreviewsMatchNaiveRandomized) {
  Rng rng(3);
  BucketStats bucket(0);
  std::vector<double> freqs;
  for (int i = 0; i < 50; ++i) {
    const double f = static_cast<double>(rng.NextBounded(100));
    bucket.Add(f, {});
    freqs.push_back(f);
  }
  for (int trial = 0; trial < 100; ++trial) {
    const double extra = static_cast<double>(rng.NextBounded(120));
    std::vector<double> with = freqs;
    with.push_back(extra);
    EXPECT_NEAR(bucket.EstimationErrorWith(extra), NaiveEstimationError(with),
                1e-7);
    const size_t victim = rng.NextBounded(freqs.size());
    std::vector<double> without = freqs;
    without.erase(without.begin() + static_cast<long>(victim));
    EXPECT_NEAR(bucket.EstimationErrorWithout(freqs[victim]),
                NaiveEstimationError(without), 1e-7);
  }
}

TEST(BucketStatsTest, SumAbsDeviationsArbitraryPivot) {
  BucketStats bucket(0);
  for (double f : {1.0, 4.0, 4.0, 10.0}) bucket.Add(f, {});
  EXPECT_DOUBLE_EQ(bucket.SumAbsDeviations(4.0), 3.0 + 0.0 + 0.0 + 6.0);
  EXPECT_DOUBLE_EQ(bucket.SumAbsDeviations(0.0), 19.0);
  EXPECT_DOUBLE_EQ(bucket.SumAbsDeviations(100.0), 400.0 - 19.0);
}

TEST(BucketStatsTest, DuplicateFrequenciesRemoveCorrectly) {
  BucketStats bucket(1);
  bucket.Add(5.0, {1.0});
  bucket.Add(5.0, {2.0});
  bucket.Add(5.0, {3.0});
  bucket.Remove(5.0, {2.0});
  EXPECT_EQ(bucket.count(), 2u);
  EXPECT_DOUBLE_EQ(bucket.Mean(), 5.0);
  // Remaining ordered-pair similarity: 2 * ||1-3||^2 = 8.
  EXPECT_NEAR(bucket.SimilarityError(), 8.0, 1e-9);
}

TEST(BucketStatsTest, ErrorCombinesLambda) {
  BucketStats bucket(1);
  bucket.Add(0.0, {0.0});
  bucket.Add(4.0, {2.0});
  // e = 4, s = 8.
  EXPECT_DOUBLE_EQ(bucket.Error(1.0), 4.0);
  EXPECT_DOUBLE_EQ(bucket.Error(0.0), 8.0);
  EXPECT_DOUBLE_EQ(bucket.Error(0.25), 0.25 * 4.0 + 0.75 * 8.0);
}

TEST(BucketStatsTest, FeaturelessBucketIgnoresSimilarity) {
  BucketStats bucket(0);
  bucket.Add(1.0, {});
  bucket.Add(9.0, {});
  EXPECT_DOUBLE_EQ(bucket.SimilarityError(), 0.0);
  EXPECT_DOUBLE_EQ(bucket.SimilarityDeltaAdd({}), 0.0);
  EXPECT_DOUBLE_EQ(bucket.Error(0.5), 0.5 * 8.0);
}

}  // namespace
}  // namespace opthash::opt

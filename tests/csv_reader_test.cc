#include "common/csv_reader.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/csv_writer.h"
#include "stream/trace_io.h"

namespace opthash {
namespace {

TEST(ParseCsvTest, SimpleRows) {
  auto rows = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows.value()[2], (std::vector<std::string>{"3", "4"}));
}

TEST(ParseCsvTest, QuotedCells) {
  auto rows = ParseCsv("text\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"line\nbreak\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 4u);
  EXPECT_EQ(rows.value()[1][0], "a,b");
  EXPECT_EQ(rows.value()[2][0], "say \"hi\"");
  EXPECT_EQ(rows.value()[3][0], "line\nbreak");
}

TEST(ParseCsvTest, MissingTrailingNewline) {
  auto rows = ParseCsv("x,y\n1,2");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1][1], "2");
}

TEST(ParseCsvTest, CrlfTolerated) {
  auto rows = ParseCsv("x\r\n1\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[1][0], "1");
}

TEST(ParseCsvTest, EmptyCells) {
  auto rows = ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows.value()[1], (std::vector<std::string>{"", "", ""}));
}

TEST(ParseCsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("\"oops\n").ok());
}

TEST(ParseCsvTest, RoundTripsWithCsvWriter) {
  CsvWriter writer({"id", "text"});
  writer.AddRow({"1", "plain"});
  writer.AddRow({"2", "with,comma"});
  writer.AddRow({"3", "with \"quotes\""});
  writer.AddRow({"4", "multi\nline"});
  auto rows = ParseCsv(writer.ToString());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 5u);
  EXPECT_EQ(rows.value()[2][1], "with,comma");
  EXPECT_EQ(rows.value()[3][1], "with \"quotes\"");
  EXPECT_EQ(rows.value()[4][1], "multi\nline");
}

TEST(ReadCsvFileTest, MissingFile) {
  EXPECT_EQ(ReadCsvFile("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(TraceIoTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  const std::vector<stream::TraceRecord> records = {
      {1, "google"}, {2, "sharon stone"}, {3, "a,b \"quoted\""}, {4, ""}};
  ASSERT_TRUE(stream::WriteTraceCsv(path, records).ok());
  auto restored = stream::ReadTraceCsv(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value(), records);
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsMissingIdHeader) {
  const std::string path = ::testing::TempDir() + "/trace_bad_header.csv";
  std::ofstream(path) << "key,text\n1,x\n";
  EXPECT_FALSE(stream::ReadTraceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsNonNumericId) {
  const std::string path = ::testing::TempDir() + "/trace_bad_id.csv";
  std::ofstream(path) << "id,text\nabc,x\n";
  EXPECT_FALSE(stream::ReadTraceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(TraceIoTest, IdOnlyTraces) {
  const std::string path = ::testing::TempDir() + "/trace_id_only.csv";
  std::ofstream(path) << "id\n5\n6\n";
  auto records = stream::ReadTraceCsv(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].id, 5u);
  EXPECT_TRUE(records.value()[0].text.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opthash

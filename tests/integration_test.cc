// End-to-end integration tests: generate a stream, train every estimator,
// process the stream, and compare errors. These tests assert the paper's
// *qualitative* headline claims on scaled-down instances.

#include <memory>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/adaptive_estimator.h"
#include "core/baseline_estimators.h"
#include "core/evaluation.h"
#include "core/opt_hash_estimator.h"
#include "sketch/learned_count_min.h"
#include "stream/features.h"
#include "stream/query_log.h"
#include "stream/synthetic.h"

namespace opthash::core {
namespace {

// Builds PrefixElements from a synthetic-world prefix stream.
std::vector<PrefixElement> CollectPrefix(const stream::SyntheticWorld& world,
                                         const std::vector<size_t>& prefix) {
  std::unordered_map<size_t, double> counts;
  for (size_t element : prefix) counts[element] += 1.0;
  std::vector<PrefixElement> out;
  out.reserve(counts.size());
  for (const auto& [element, count] : counts) {
    out.push_back({.id = element,
                   .frequency = count,
                   .features = world.FeaturesOf(element)});
  }
  return out;
}

TEST(IntegrationTest, SyntheticEndToEndOptHashBeatsBaselinesOnAverageError) {
  stream::SyntheticConfig world_config;
  world_config.num_groups = 8;
  world_config.fraction_seen = 0.5;
  world_config.seed = 1;
  stream::SyntheticWorld world(world_config);

  Rng rng(2);
  const std::vector<size_t> prefix =
      world.GeneratePrefix(world.DefaultPrefixLength(), rng);
  const std::vector<PrefixElement> prefix_elements =
      CollectPrefix(world, prefix);

  constexpr size_t kBudget = 600;
  OptHashConfig config;
  config.total_buckets = kBudget;
  config.id_ratio = 0.3;
  config.lambda = 1.0;
  config.solver = SolverKind::kBcd;
  config.classifier = ClassifierKind::kCart;
  auto opt_hash_result = OptHashEstimator::Train(config, prefix_elements);
  ASSERT_TRUE(opt_hash_result.ok());
  OptHashEstimator& opt_hash = opt_hash_result.value();

  // Post-prefix stream of 10 epochs.
  const std::vector<size_t> stream =
      world.GenerateStream(10 * prefix.size(), rng);

  // Ground truth over prefix + stream.
  stream::ExactCounter truth;
  for (size_t element : prefix) truth.Add(element);
  for (size_t element : stream) truth.Add(element);

  // Baselines (best depth configuration chosen as in §7.2 would be; here a
  // reasonable fixed depth suffices for the qualitative claim).
  CountMinEstimator count_min(kBudget, 4, 7);
  const std::vector<uint64_t> heavy = sketch::SelectTopKeys(
      truth.counts(), 50);  // Ideal oracle, as in the paper.
  auto lcms_result = LearnedCmsEstimator::Create(kBudget, 2, heavy, 7);
  ASSERT_TRUE(lcms_result.ok());
  LearnedCmsEstimator& heavy_hitter = lcms_result.value();

  // Budgets comparable.
  EXPECT_LE(opt_hash.MemoryBuckets(), kBudget);
  EXPECT_LE(count_min.MemoryBuckets(), kBudget);
  EXPECT_LE(heavy_hitter.MemoryBuckets(), kBudget);

  // Baselines see the whole stream (prefix + rest); opt-hash was trained on
  // the prefix counts and sees the rest.
  for (size_t element : prefix) {
    count_min.Update({element, nullptr});
    heavy_hitter.Update({element, nullptr});
  }
  for (size_t element : stream) {
    const stream::StreamItem item{element, &world.FeaturesOf(element)};
    opt_hash.Update(item);
    count_min.Update(item);
    heavy_hitter.Update(item);
  }

  // Queries: every element that appeared.
  std::vector<EvalQuery> queries;
  for (const auto& [element, count] : truth.counts()) {
    queries.push_back({{element, &world.FeaturesOf(element)},
                       static_cast<double>(count)});
  }

  const ErrorMetrics opt_metrics = EvaluateEstimator(opt_hash, queries);
  const ErrorMetrics cms_metrics = EvaluateEstimator(count_min, queries);
  const ErrorMetrics lcms_metrics = EvaluateEstimator(heavy_hitter, queries);

  // The headline claim: opt-hash wins on average (per element) error.
  EXPECT_LT(opt_metrics.average_absolute_error,
            cms_metrics.average_absolute_error);
  EXPECT_LT(opt_metrics.average_absolute_error,
            lcms_metrics.average_absolute_error);
  // And the learned CMS beats the plain CMS (ref [8]'s claim).
  EXPECT_LT(lcms_metrics.average_absolute_error,
            cms_metrics.average_absolute_error);
}

TEST(IntegrationTest, QueryLogEndToEndPipeline) {
  // Miniature §7 pipeline: day 0 is the prefix; train on it; stream days
  // 1..5; evaluate on day-5 queries against cumulative truth.
  stream::QueryLogConfig log_config;
  log_config.num_queries = 3000;
  log_config.arrivals_per_day = 3000;
  log_config.num_days = 6;
  log_config.seed = 3;
  stream::QueryLog log(log_config);

  // Prefix counts + featurizer fit on day 0.
  std::unordered_map<size_t, double> day0_counts;
  for (size_t rank : log.GenerateDay(0)) day0_counts[rank] += 1.0;
  std::vector<std::pair<std::string, double>> corpus;
  for (const auto& [rank, count] : day0_counts) {
    corpus.push_back({log.QueryText(rank), count});
  }
  stream::BagOfWordsFeaturizer featurizer(200);
  featurizer.Fit(corpus);

  std::vector<PrefixElement> prefix_elements;
  for (const auto& [rank, count] : day0_counts) {
    prefix_elements.push_back({.id = log.QueryId(rank),
                               .frequency = count,
                               .features =
                                   featurizer.Featurize(log.QueryText(rank))});
  }

  OptHashConfig config;
  config.total_buckets = 500;
  config.id_ratio = 0.3;
  config.lambda = 1.0;
  config.solver = SolverKind::kBcd;
  config.classifier = ClassifierKind::kCart;
  auto trained = OptHashEstimator::Train(config, prefix_elements);
  ASSERT_TRUE(trained.ok());
  OptHashEstimator& opt_hash = trained.value();

  stream::ExactCounter truth;
  for (size_t rank : log.GenerateDay(0)) truth.Add(log.QueryId(rank));

  // Feature cache: StreamItem holds a pointer, so features must outlive it.
  std::unordered_map<size_t, std::vector<double>> feature_cache;
  auto features_of = [&](size_t rank) -> const std::vector<double>& {
    auto it = feature_cache.find(rank);
    if (it == feature_cache.end()) {
      it = feature_cache
               .emplace(rank, featurizer.Featurize(log.QueryText(rank)))
               .first;
    }
    return it->second;
  };

  for (size_t day = 1; day < 6; ++day) {
    for (size_t rank : log.GenerateDay(day)) {
      truth.Add(log.QueryId(rank));
      opt_hash.Update({log.QueryId(rank), &features_of(rank)});
    }
  }

  // Evaluate on the set of queries appearing in the last day (U_t).
  const std::vector<size_t> last_day_arrivals = log.GenerateDay(5);
  std::set<size_t> last_day(last_day_arrivals.begin(),
                            last_day_arrivals.end());
  std::vector<EvalQuery> queries;
  for (size_t rank : last_day) {
    queries.push_back({{log.QueryId(rank), &features_of(rank)},
                       static_cast<double>(truth.Count(log.QueryId(rank)))});
  }
  const ErrorMetrics metrics = EvaluateEstimator(opt_hash, queries);

  // Sanity: errors finite and small relative to the head frequency.
  const double head = static_cast<double>(truth.Count(1));
  EXPECT_GT(head, 50.0);
  EXPECT_LT(metrics.average_absolute_error, head);
  EXPECT_LT(metrics.expected_magnitude_error, head);
  EXPECT_GT(metrics.num_queries, 100u);
}

TEST(IntegrationTest, AdaptiveModeImprovesUnseenTracking) {
  // Elements absent from the prefix but frequent afterwards: the adaptive
  // estimator should track their arrival mass; the static one cannot.
  stream::SyntheticConfig world_config;
  world_config.num_groups = 6;
  world_config.fraction_seen = 0.33;
  world_config.seed = 4;
  stream::SyntheticWorld world(world_config);

  Rng rng(5);
  const std::vector<size_t> prefix =
      world.GeneratePrefix(world.DefaultPrefixLength(), rng);
  const std::vector<PrefixElement> prefix_elements =
      CollectPrefix(world, prefix);

  OptHashConfig config;
  config.total_buckets = 300;
  config.solver = SolverKind::kBcd;
  config.classifier = ClassifierKind::kCart;
  auto trained = OptHashEstimator::Train(config, prefix_elements);
  ASSERT_TRUE(trained.ok());

  std::vector<uint64_t> prefix_ids;
  for (const auto& element : prefix_elements) prefix_ids.push_back(element.id);
  AdaptiveConfig adaptive_config;
  adaptive_config.expected_distinct = world.NumElements() * 2;
  adaptive_config.bloom_fpr = 0.01;
  AdaptiveOptHashEstimator adaptive(std::move(trained).value(),
                                    adaptive_config, prefix_ids);

  const std::vector<size_t> stream =
      world.GenerateStream(10 * prefix.size(), rng);
  stream::ExactCounter truth;
  for (size_t element : prefix) truth.Add(element);
  for (size_t element : stream) {
    truth.Add(element);
    adaptive.Update({element, &world.FeaturesOf(element)});
  }

  // Evaluate only on elements NOT eligible for the prefix that appeared.
  std::vector<EvalQuery> unseen_queries;
  for (const auto& [element, count] : truth.counts()) {
    if (!world.PrefixEligible(element)) {
      unseen_queries.push_back({{element, &world.FeaturesOf(element)},
                                static_cast<double>(count)});
    }
  }
  ASSERT_GT(unseen_queries.size(), 50u);
  const ErrorMetrics metrics = EvaluateEstimator(adaptive, unseen_queries);
  // Unseen elements are light (ineligible halves of each group); estimates
  // must be in a sane range rather than zero or wildly off.
  EXPECT_LT(metrics.average_absolute_error, 200.0);
}

}  // namespace
}  // namespace opthash::core

// Degenerate-input coverage across modules: minimum sizes, empty inputs
// and boundary budgets must behave sensibly rather than crash.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/opt_hash_estimator.h"
#include "opt/bcd.h"
#include "opt/dp.h"
#include "sketch/count_min_sketch.h"
#include "stream/features.h"
#include "stream/query_log.h"
#include "stream/synthetic.h"

namespace opthash {
namespace {

TEST(EdgeCasesTest, SingleElementSingleBucketSolvers) {
  opt::HashingProblem problem;
  problem.frequencies = {5.0};
  problem.num_buckets = 1;
  problem.lambda = 1.0;
  EXPECT_DOUBLE_EQ(opt::BcdSolver().Solve(problem).objective.overall, 0.0);
  EXPECT_DOUBLE_EQ(opt::DpSolver().Solve(problem).objective.overall, 0.0);
}

TEST(EdgeCasesTest, AllEqualFrequencies) {
  opt::HashingProblem problem;
  problem.frequencies.assign(50, 7.0);
  problem.num_buckets = 5;
  problem.lambda = 1.0;
  const opt::SolveResult dp = opt::DpSolver().Solve(problem);
  EXPECT_DOUBLE_EQ(dp.objective.overall, 0.0);
  const opt::SolveResult bcd = opt::BcdSolver().Solve(problem);
  EXPECT_DOUBLE_EQ(bcd.objective.overall, 0.0);
}

TEST(EdgeCasesTest, ZeroFrequenciesAreValid) {
  opt::HashingProblem problem;
  problem.frequencies = {0.0, 0.0, 3.0};
  problem.num_buckets = 2;
  problem.lambda = 1.0;
  ASSERT_TRUE(problem.Validate().ok());
  const opt::SolveResult result = opt::DpSolver().Solve(problem);
  EXPECT_DOUBLE_EQ(result.objective.overall, 0.0);  // {0,0} and {3}.
}

TEST(EdgeCasesTest, MinimalEstimatorBudget) {
  // total_buckets = 2 with c = 1 gives exactly one stored ID and one bucket.
  core::OptHashConfig config;
  config.total_buckets = 2;
  config.id_ratio = 1.0;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kNone;
  std::vector<core::PrefixElement> prefix = {{.id = 9, .frequency = 4.0,
                                              .features = {}}};
  auto estimator = core::OptHashEstimator::Train(config, prefix);
  ASSERT_TRUE(estimator.ok());
  EXPECT_EQ(estimator.value().num_buckets(), 1u);
  EXPECT_EQ(estimator.value().num_stored_ids(), 1u);
  EXPECT_DOUBLE_EQ(estimator.value().Estimate({9, nullptr}), 4.0);
}

TEST(EdgeCasesTest, EstimatorSingleElementPrefixWithClassifier) {
  core::OptHashConfig config;
  config.total_buckets = 10;
  config.solver = core::SolverKind::kDp;
  config.classifier = core::ClassifierKind::kCart;
  std::vector<core::PrefixElement> prefix = {
      {.id = 1, .frequency = 2.0, .features = {1.0, 2.0}}};
  auto estimator = core::OptHashEstimator::Train(config, prefix);
  ASSERT_TRUE(estimator.ok());
  const std::vector<double> features = {0.0, 0.0};
  // The one-class classifier routes everything to the only bucket.
  EXPECT_DOUBLE_EQ(estimator.value().Estimate({12345, &features}), 2.0);
}

TEST(EdgeCasesTest, FeaturizerEmptyCorpus) {
  stream::BagOfWordsFeaturizer featurizer(100);
  featurizer.Fit({});
  EXPECT_EQ(featurizer.VocabularySize(), 0u);
  EXPECT_EQ(featurizer.FeatureDim(), 4u);
  const std::vector<double> features = featurizer.Featurize("some text.");
  ASSERT_EQ(features.size(), 4u);
  EXPECT_DOUBLE_EQ(features[0], 10.0);  // ASCII chars.
  EXPECT_DOUBLE_EQ(features[2], 1.0);   // Dots.
}

TEST(EdgeCasesTest, FeaturizerZeroCapacity) {
  stream::BagOfWordsFeaturizer featurizer(0);
  featurizer.Fit({{"google maps", 5.0}});
  EXPECT_EQ(featurizer.VocabularySize(), 0u);
  EXPECT_EQ(featurizer.FeatureDim(), 4u);
}

TEST(EdgeCasesTest, SingleGroupWorld) {
  stream::SyntheticConfig config;
  config.num_groups = 1;
  config.fraction_seen = 1.0;
  stream::SyntheticWorld world(config);
  EXPECT_EQ(world.NumElements(), 8u);  // 2^(2+1).
  Rng rng(1);
  const auto stream = world.GenerateStream(100, rng);
  for (size_t e : stream) EXPECT_LT(e, 8u);
}

TEST(EdgeCasesTest, SingleQueryLog) {
  stream::QueryLogConfig config;
  config.num_queries = 1;
  config.arrivals_per_day = 10;
  config.num_days = 2;
  stream::QueryLog log(config);
  const auto day = log.GenerateDay(0);
  ASSERT_EQ(day.size(), 10u);
  for (size_t rank : day) EXPECT_EQ(rank, 1u);
  EXPECT_DOUBLE_EQ(log.Probability(1), 1.0);
}

TEST(EdgeCasesTest, OneByOneCountMin) {
  sketch::CountMinSketch sketch(1, 1, 1);
  sketch.Update(5);
  sketch.Update(6);
  // A single counter aggregates everything: still an upper bound.
  EXPECT_EQ(sketch.Estimate(5), 2u);
  EXPECT_EQ(sketch.Estimate(7), 2u);
}

TEST(EdgeCasesTest, WeightedSampleZeroK) {
  Rng rng(2);
  EXPECT_TRUE(WeightedSampleWithoutReplacement({1.0, 2.0}, 0, rng).empty());
}

TEST(EdgeCasesTest, BcdMoreBucketsThanElements) {
  const opt::HashingProblem problem = [] {
    opt::HashingProblem p;
    p.frequencies = {1.0, 9.0};
    p.num_buckets = 10;
    p.lambda = 1.0;
    return p;
  }();
  const opt::SolveResult result = opt::BcdSolver().Solve(problem);
  EXPECT_DOUBLE_EQ(result.objective.overall, 0.0);
  EXPECT_NE(result.assignment[0], result.assignment[1]);
}

TEST(EdgeCasesTest, EstimatorRejectsDegenerateRatios) {
  core::OptHashConfig config;
  config.total_buckets = 10;
  config.id_ratio = 1000.0;  // floor(10/1001) = 0 stored IDs.
  std::vector<core::PrefixElement> prefix = {{.id = 1, .frequency = 1.0,
                                              .features = {}}};
  config.classifier = core::ClassifierKind::kNone;
  EXPECT_FALSE(core::OptHashEstimator::Train(config, prefix).ok());
}

}  // namespace
}  // namespace opthash

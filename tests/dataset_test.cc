#include "ml/dataset.h"

#include <gtest/gtest.h>

#include "ml/matrix.h"

namespace opthash::ml {
namespace {

TEST(DatasetTest, AddAndAccess) {
  Dataset data(2);
  data.Add({1.0, 2.0}, 0);
  data.Add({3.0, 4.0}, 1);
  EXPECT_EQ(data.NumExamples(), 2u);
  EXPECT_EQ(data.NumFeatures(), 2u);
  EXPECT_EQ(data.NumClasses(), 2u);
  EXPECT_EQ(data.Label(0), 0);
  EXPECT_EQ(data.Features(1)[0], 3.0);
}

TEST(DatasetTest, FirstExampleFixesWidth) {
  Dataset data;
  data.Add({1.0, 2.0, 3.0}, 0);
  EXPECT_EQ(data.NumFeatures(), 3u);
}

TEST(DatasetTest, NumClassesIsMaxLabelPlusOne) {
  Dataset data(1);
  data.Add({0.0}, 5);
  data.Add({0.0}, 2);
  EXPECT_EQ(data.NumClasses(), 6u);
}

TEST(DatasetTest, SubsetWithRepetition) {
  Dataset data(1);
  data.Add({1.0}, 0);
  data.Add({2.0}, 1);
  const Dataset subset = data.Subset({1, 1, 0});
  EXPECT_EQ(subset.NumExamples(), 3u);
  EXPECT_EQ(subset.Label(0), 1);
  EXPECT_EQ(subset.Label(2), 0);
  EXPECT_EQ(subset.Features(0)[0], 2.0);
}

TEST(DatasetTest, ClassCounts) {
  Dataset data(1);
  data.Add({0.0}, 0);
  data.Add({0.0}, 2);
  data.Add({0.0}, 2);
  const std::vector<size_t> counts = data.ClassCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(MatrixTest, AtReadWrite) {
  Matrix m(2, 3, 0.5);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.5);
  m.At(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 7.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(MatrixTest, RowPointerIsContiguous) {
  Matrix m(2, 2);
  m.At(1, 0) = 3.0;
  m.At(1, 1) = 4.0;
  const double* row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
}

TEST(MatrixTest, AxpyAccumulates) {
  Matrix a(1, 2, 1.0);
  Matrix b(1, 2, 2.0);
  a.Axpy(3.0, b);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 7.0);
}

TEST(MatrixTest, SquaredNorm) {
  Matrix m(1, 3);
  m.At(0, 0) = 1.0;
  m.At(0, 1) = 2.0;
  m.At(0, 2) = 2.0;
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 9.0);
}

TEST(MatrixTest, FillOverwrites) {
  Matrix m(2, 2, 5.0);
  m.Fill(1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 1.0);
}

}  // namespace
}  // namespace opthash::ml

#include "opt/bcd.h"

#include <gtest/gtest.h>

#include "opt/dp.h"
#include "opt_test_util.h"

namespace opthash::opt {
namespace {

TEST(BcdTest, ObjectiveMatchesSweepBookkeeping) {
  // The incremental objective recorded after the last sweep must agree with
  // the authoritative from-scratch evaluation.
  const HashingProblem problem = testutil::RandomProblem(60, 5, 0.5, 2, 1);
  BcdSolver solver;
  const SolveResult result = solver.Solve(problem);
  ASSERT_FALSE(result.sweep_objectives.empty());
  EXPECT_NEAR(result.sweep_objectives.back(), result.objective.overall, 1e-6);
}

TEST(BcdTest, SweepObjectivesNonIncreasing) {
  // Every accepted move minimizes the total error, so sweeps can only
  // improve — the key convergence property of Algorithm 1.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const HashingProblem problem =
        testutil::RandomProblem(80, 6, 0.3, 2, seed);
    BcdConfig config;
    config.seed = seed;
    BcdSolver solver(config);
    const SolveResult result = solver.Solve(problem);
    for (size_t t = 1; t < result.sweep_objectives.size(); ++t) {
      EXPECT_LE(result.sweep_objectives[t],
                result.sweep_objectives[t - 1] + 1e-9);
    }
  }
}

TEST(BcdTest, ImprovesOverRandomInitialization) {
  const HashingProblem problem = testutil::RandomProblem(100, 8, 1.0, 0, 2);
  Rng rng(7);
  Assignment initial =
      InitializeAssignment(problem, InitStrategy::kRandom, rng);
  const double initial_value = EvaluateObjective(problem, initial).overall;
  BcdSolver solver;
  const SolveResult result = solver.SolveFrom(problem, initial);
  EXPECT_LT(result.objective.overall, initial_value);
}

TEST(BcdTest, NearOptimalOnTinyInstancesLambdaOne) {
  // Against brute force, BCD with restarts should land within a small
  // factor of the optimum on tiny instances.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const HashingProblem problem = testutil::RandomProblem(8, 3, 1.0, 0, seed);
    const double brute = testutil::BruteForceOptimum(problem);
    BcdConfig config;
    config.num_restarts = 5;
    config.seed = seed;
    BcdSolver solver(config);
    const SolveResult result = solver.Solve(problem);
    EXPECT_LE(result.objective.overall, brute * 1.2 + 1e-6) << "seed " << seed;
    EXPECT_GE(result.objective.overall, brute - 1e-9);
  }
}

TEST(BcdTest, NearOptimalOnTinyInstancesMixedLambda) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const HashingProblem problem = testutil::RandomProblem(7, 3, 0.5, 2, seed);
    const double brute = testutil::BruteForceOptimum(problem);
    BcdConfig config;
    config.num_restarts = 8;
    config.seed = seed;
    BcdSolver solver(config);
    const SolveResult result = solver.Solve(problem);
    EXPECT_LE(result.objective.overall, brute * 1.25 + 1e-6)
        << "seed " << seed;
    EXPECT_GE(result.objective.overall, brute - 1e-9);
  }
}

TEST(BcdTest, LocalOptimumIsStableUnderReSolve) {
  // Running BCD again from its own solution must not change the objective
  // (a local optimum has no improving single-element move).
  const HashingProblem problem = testutil::RandomProblem(50, 4, 0.6, 2, 3);
  BcdSolver solver;
  const SolveResult first = solver.Solve(problem);
  const SolveResult second = solver.SolveFrom(problem, first.assignment);
  EXPECT_NEAR(second.objective.overall, first.objective.overall, 1e-9);
}

TEST(BcdTest, RestartsNeverHurt) {
  const HashingProblem problem = testutil::RandomProblem(40, 5, 0.5, 2, 4);
  BcdConfig one;
  one.num_restarts = 1;
  one.seed = 11;
  BcdConfig many = one;
  many.num_restarts = 6;
  const SolveResult single = BcdSolver(one).Solve(problem);
  const SolveResult multi = BcdSolver(many).Solve(problem);
  EXPECT_LE(multi.objective.overall, single.objective.overall + 1e-9);
}

TEST(BcdTest, DeterministicGivenSeed) {
  const HashingProblem problem = testutil::RandomProblem(30, 4, 0.5, 2, 5);
  BcdConfig config;
  config.seed = 21;
  const SolveResult a = BcdSolver(config).Solve(problem);
  const SolveResult b = BcdSolver(config).Solve(problem);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.objective.overall, b.objective.overall);
}

TEST(BcdTest, RespectsMaxSweeps) {
  const HashingProblem problem = testutil::RandomProblem(60, 6, 0.5, 2, 6);
  BcdConfig config;
  config.max_sweeps = 2;
  const SolveResult result = BcdSolver(config).Solve(problem);
  EXPECT_LE(result.iterations, 2u);
}

TEST(BcdTest, ConvergesWithinFewTensOfSweeps) {
  // The paper: "Algorithm 1 converges to a local optimum after a few tens
  // of iterations".
  const HashingProblem problem = testutil::RandomProblem(200, 10, 0.5, 2, 7);
  BcdConfig config;
  config.max_sweeps = 100;
  const SolveResult result = BcdSolver(config).Solve(problem);
  EXPECT_LT(result.iterations, 60u);
}

TEST(BcdTest, LambdaZeroClustersByFeatures) {
  // Two well-separated feature blobs, frequencies chosen adversarially so
  // that lambda = 0 must split by geometry, not frequency.
  HashingProblem problem;
  problem.num_buckets = 2;
  problem.lambda = 0.0;
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const bool left = i % 2 == 0;
    problem.frequencies.push_back(static_cast<double>(i));
    problem.features.push_back({left ? -10.0 + rng.NextGaussian() * 0.1
                                     : 10.0 + rng.NextGaussian() * 0.1});
  }
  BcdConfig config;
  config.num_restarts = 4;
  const SolveResult result = BcdSolver(config).Solve(problem);
  // All left-blob elements together, all right-blob together.
  for (int i = 2; i < 20; i += 2) {
    EXPECT_EQ(result.assignment[static_cast<size_t>(i)], result.assignment[0]);
  }
  for (int i = 3; i < 20; i += 2) {
    EXPECT_EQ(result.assignment[static_cast<size_t>(i)], result.assignment[1]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[1]);
}

TEST(BcdTest, LambdaOneWithoutFeaturesWorks) {
  HashingProblem problem;
  problem.frequencies = {1.0, 1.0, 50.0, 50.0};
  problem.num_buckets = 2;
  problem.lambda = 1.0;
  const SolveResult result = BcdSolver().Solve(problem);
  EXPECT_NEAR(result.objective.overall, 0.0, 1e-9);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[2], result.assignment[3]);
  EXPECT_NE(result.assignment[0], result.assignment[2]);
}

TEST(BcdTest, SingleBucketIsFixedPoint) {
  const HashingProblem problem = testutil::RandomProblem(20, 1, 1.0, 0, 9);
  const SolveResult result = BcdSolver().Solve(problem);
  for (int32_t bucket : result.assignment) EXPECT_EQ(bucket, 0);
  // Exactly the single-bucket objective.
  EXPECT_NEAR(result.objective.overall,
              EvaluateObjective(problem, result.assignment).overall, 1e-12);
}

class BcdInitSweep : public ::testing::TestWithParam<InitStrategy> {};

TEST_P(BcdInitSweep, AllInitializationsReachComparableQuality) {
  const HashingProblem problem = testutil::RandomProblem(60, 5, 1.0, 0, 10);
  BcdConfig config;
  config.init = GetParam();
  const SolveResult result = BcdSolver(config).Solve(problem);
  // DP warm start is optimal for lambda = 1; others should be within 2x.
  DpSolver dp;
  const double optimal = dp.Solve(problem).objective.overall;
  EXPECT_LE(result.objective.overall, 2.0 * optimal + 1e-6)
      << InitStrategyName(GetParam());
  EXPECT_GE(result.objective.overall, optimal - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Inits, BcdInitSweep,
                         ::testing::Values(InitStrategy::kRandom,
                                           InitStrategy::kSortedSplit,
                                           InitStrategy::kHeavyHitter,
                                           InitStrategy::kDpWarmStart));

}  // namespace
}  // namespace opthash::opt

#include "stream/synthetic.h"

#include <cmath>
#include <unordered_map>

#include <gtest/gtest.h>

namespace opthash::stream {
namespace {

SyntheticConfig BaseConfig() {
  SyntheticConfig config;
  config.num_groups = 6;
  config.min_group_exponent = 2;
  config.feature_dim = 2;
  config.fraction_seen = 0.5;
  config.seed = 42;
  return config;
}

TEST(SyntheticConfigTest, Validation) {
  EXPECT_TRUE(BaseConfig().Validate().ok());
  SyntheticConfig bad = BaseConfig();
  bad.num_groups = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.fraction_seen = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.fraction_seen = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad = BaseConfig();
  bad.feature_dim = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(SyntheticWorldTest, UniverseSizeMatchesPaperFormula) {
  // G groups of sizes 2^(G0+1) .. 2^(G0+G): for G=6, G0=2 -> 8+...+256=504.
  SyntheticWorld world(BaseConfig());
  EXPECT_EQ(world.NumElements(), 504u);
  EXPECT_EQ(world.NumGroups(), 6u);
}

TEST(SyntheticWorldTest, PaperExampleG10) {
  // The paper: "by setting G = 10 and g0 = 0.5, we obtain a problem with
  // 8,192 elements, out of which we only allow for 4,096 to appear in the
  // prefix, which in turn has size 10,240."
  SyntheticConfig config = BaseConfig();
  config.num_groups = 10;
  config.fraction_seen = 0.5;
  SyntheticWorld world(config);
  EXPECT_EQ(world.NumElements(), 8184u);  // sum 2^3..2^12 = 2^13 - 8.
  size_t eligible = 0;
  for (size_t e = 0; e < world.NumElements(); ++e) {
    if (world.PrefixEligible(e)) ++eligible;
  }
  EXPECT_EQ(eligible, 4092u);  // Half of each group.
  EXPECT_EQ(world.DefaultPrefixLength(), 10240u);
}

TEST(SyntheticWorldTest, GroupSizesDouble) {
  SyntheticWorld world(BaseConfig());
  std::unordered_map<size_t, size_t> group_sizes;
  for (size_t e = 0; e < world.NumElements(); ++e) {
    ++group_sizes[world.GroupOf(e)];
  }
  ASSERT_EQ(group_sizes.size(), 6u);
  for (size_t g = 1; g <= 6; ++g) {
    EXPECT_EQ(group_sizes[g], size_t{1} << (2 + g));
  }
}

TEST(SyntheticWorldTest, FeaturesClusterByGroup) {
  SyntheticWorld world(BaseConfig());
  // Within-group feature variance ~ 1 per dim; group means are spread over
  // [-10, 10]^2. Verify members are within a few sigma of their group mean.
  std::unordered_map<size_t, std::vector<double>> group_mean;
  std::unordered_map<size_t, size_t> group_count;
  for (size_t e = 0; e < world.NumElements(); ++e) {
    auto& mean = group_mean[world.GroupOf(e)];
    if (mean.empty()) mean.assign(2, 0.0);
    mean[0] += world.FeaturesOf(e)[0];
    mean[1] += world.FeaturesOf(e)[1];
    ++group_count[world.GroupOf(e)];
  }
  for (auto& [g, mean] : group_mean) {
    mean[0] /= static_cast<double>(group_count[g]);
    mean[1] /= static_cast<double>(group_count[g]);
  }
  size_t outliers = 0;
  for (size_t e = 0; e < world.NumElements(); ++e) {
    const auto& mean = group_mean[world.GroupOf(e)];
    const double dx = world.FeaturesOf(e)[0] - mean[0];
    const double dy = world.FeaturesOf(e)[1] - mean[1];
    if (std::sqrt(dx * dx + dy * dy) > 4.0) ++outliers;
  }
  EXPECT_LT(outliers, world.NumElements() / 100);
}

TEST(SyntheticWorldTest, SmallGroupsArriveMoreOften) {
  // Group arrival probability ∝ 1/g and within-group uniform, so elements
  // of group 1 are the heavy hitters.
  SyntheticWorld world(BaseConfig());
  Rng rng(7);
  const std::vector<size_t> stream = world.GenerateStream(200000, rng);
  std::unordered_map<size_t, size_t> group_counts;
  for (size_t e : stream) ++group_counts[world.GroupOf(e)];
  // Group totals ∝ 1/g: counts of group 1 should be twice group 2's, etc.
  const double h6 = 1.0 + 0.5 + 1.0 / 3 + 0.25 + 0.2 + 1.0 / 6;
  for (size_t g = 1; g <= 6; ++g) {
    const double expected = 200000.0 / (static_cast<double>(g) * h6);
    EXPECT_NEAR(static_cast<double>(group_counts[g]), expected,
                6.0 * std::sqrt(expected) + 50.0)
        << "group " << g;
  }
}

TEST(SyntheticWorldTest, PrefixOnlyContainsEligibleElements) {
  SyntheticWorld world(BaseConfig());
  Rng rng(8);
  const std::vector<size_t> prefix = world.GeneratePrefix(20000, rng);
  for (size_t e : prefix) {
    EXPECT_TRUE(world.PrefixEligible(e));
  }
}

TEST(SyntheticWorldTest, FullStreamReachesIneligibleElements) {
  SyntheticWorld world(BaseConfig());
  Rng rng(9);
  const std::vector<size_t> stream = world.GenerateStream(50000, rng);
  size_t unseen_hits = 0;
  for (size_t e : stream) {
    if (!world.PrefixEligible(e)) ++unseen_hits;
  }
  // Half of every group is ineligible, so about half the arrivals.
  EXPECT_GT(unseen_hits, 20000u);
}

TEST(SyntheticWorldTest, ArrivalProbabilitiesSumToOne) {
  SyntheticWorld world(BaseConfig());
  double total = 0.0;
  for (size_t e = 0; e < world.NumElements(); ++e) {
    total += world.ArrivalProbability(e);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SyntheticWorldTest, DeterministicGivenSeed) {
  SyntheticWorld a(BaseConfig());
  SyntheticWorld b(BaseConfig());
  for (size_t e = 0; e < a.NumElements(); ++e) {
    EXPECT_EQ(a.FeaturesOf(e), b.FeaturesOf(e));
    EXPECT_EQ(a.GroupOf(e), b.GroupOf(e));
  }
  Rng rng_a(5);
  Rng rng_b(5);
  EXPECT_EQ(a.GenerateStream(1000, rng_a), b.GenerateStream(1000, rng_b));
}

TEST(SyntheticWorldTest, EveryGroupHasAtLeastOneEligibleElement) {
  SyntheticConfig config = BaseConfig();
  config.fraction_seen = 0.01;  // Tiny fraction.
  SyntheticWorld world(config);
  std::unordered_map<size_t, size_t> eligible_per_group;
  for (size_t e = 0; e < world.NumElements(); ++e) {
    if (world.PrefixEligible(e)) ++eligible_per_group[world.GroupOf(e)];
  }
  for (size_t g = 1; g <= config.num_groups; ++g) {
    EXPECT_GE(eligible_per_group[g], 1u) << "group " << g;
  }
}

class SyntheticGroupSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(SyntheticGroupSweep, UniverseGrowsExponentially) {
  SyntheticConfig config = BaseConfig();
  config.num_groups = GetParam();
  SyntheticWorld world(config);
  // sum_{g=1..G} 2^(2+g) = 2^(G+3) - 8.
  EXPECT_EQ(world.NumElements(), (size_t{1} << (GetParam() + 3)) - 8);
}

INSTANTIATE_TEST_SUITE_P(Groups, SyntheticGroupSweep,
                         ::testing::Values(1, 4, 6, 8, 10, 12));

}  // namespace
}  // namespace opthash::stream

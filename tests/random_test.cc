#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace opthash {
namespace {

TEST(SplitMix64Test, DeterministicAndAdvancesState) {
  uint64_t s1 = 7;
  uint64_t s2 = 7;
  const uint64_t a = SplitMix64(s1);
  const uint64_t b = SplitMix64(s2);
  EXPECT_EQ(a, b);
  EXPECT_NE(SplitMix64(s1), a);  // State advanced.
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  size_t differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differences;
  }
  EXPECT_GT(differences, 30u);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedApproximatelyUniform) {
  Rng rng(6);
  constexpr size_t kBuckets = 8;
  constexpr size_t kDraws = 80000;
  std::vector<size_t> counts(kBuckets, 0);
  for (size_t i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, 5 * std::sqrt(expected));
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(9);
  double total = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) total += rng.NextDouble();
  EXPECT_NEAR(total / kDraws, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(10);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.02);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(11);
  const std::vector<size_t> perm = rng.Permutation(100);
  std::set<size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(RngTest, PermutationShuffles) {
  Rng rng(12);
  const std::vector<size_t> perm = rng.Permutation(50);
  std::vector<size_t> identity(50);
  std::iota(identity.begin(), identity.end(), size_t{0});
  EXPECT_NE(perm, identity);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<size_t> counts(3, 0);
  constexpr size_t kDraws = 40000;
  for (size_t i = 0; i < kDraws; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[1], 0u);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kDraws, 0.75, 0.02);
}

TEST(WeightedSampleTest, TakesAllWhenKExceedsN) {
  Rng rng(14);
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  const std::vector<size_t> chosen =
      WeightedSampleWithoutReplacement(weights, 10, rng);
  EXPECT_EQ(chosen.size(), 3u);
}

TEST(WeightedSampleTest, ReturnsDistinctIndices) {
  Rng rng(15);
  std::vector<double> weights(100, 1.0);
  const std::vector<size_t> chosen =
      WeightedSampleWithoutReplacement(weights, 30, rng);
  std::set<size_t> unique(chosen.begin(), chosen.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t index : chosen) EXPECT_LT(index, 100u);
}

TEST(WeightedSampleTest, HeavyItemsSelectedMoreOften) {
  Rng rng(16);
  // Item 0 has weight 50, the other 99 items weight 1.
  std::vector<double> weights(100, 1.0);
  weights[0] = 50.0;
  size_t hits = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    const std::vector<size_t> chosen =
        WeightedSampleWithoutReplacement(weights, 10, rng);
    hits += static_cast<size_t>(
        std::count(chosen.begin(), chosen.end(), size_t{0}));
  }
  // With weight 50 vs 1, item 0 should be sampled nearly always.
  EXPECT_GT(static_cast<double>(hits) / kTrials, 0.95);
}

TEST(WeightedSampleTest, ZeroWeightOnlyChosenWhenForced) {
  Rng rng(17);
  const std::vector<double> weights = {0.0, 1.0, 1.0};
  for (int t = 0; t < 200; ++t) {
    const std::vector<size_t> chosen =
        WeightedSampleWithoutReplacement(weights, 2, rng);
    for (size_t index : chosen) EXPECT_NE(index, 0u);
  }
}

TEST(ZipfSamplerTest, ProbabilitiesSumToOne) {
  ZipfSampler sampler(1000, 1.0);
  double total = 0.0;
  for (size_t r = 1; r <= 1000; ++r) total += sampler.Probability(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, ProbabilitiesDecreaseWithRank) {
  ZipfSampler sampler(100, 0.82);
  for (size_t r = 1; r < 100; ++r) {
    EXPECT_GT(sampler.Probability(r), sampler.Probability(r + 1));
  }
}

TEST(ZipfSamplerTest, ZipfLawRatio) {
  // P(1)/P(r) should equal r^s.
  const double s = 0.82;
  ZipfSampler sampler(10000, s);
  for (size_t r : {2u, 10u, 100u, 1000u}) {
    const double ratio = sampler.Probability(1) / sampler.Probability(r);
    EXPECT_NEAR(ratio, std::pow(static_cast<double>(r), s), 1e-6 * ratio);
  }
}

TEST(ZipfSamplerTest, SampleMatchesDistribution) {
  ZipfSampler sampler(50, 1.0);
  Rng rng(18);
  std::vector<size_t> counts(51, 0);
  constexpr size_t kDraws = 200000;
  for (size_t i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  for (size_t r = 1; r <= 50; ++r) {
    const double expected = sampler.Probability(r) * kDraws;
    EXPECT_NEAR(static_cast<double>(counts[r]), expected,
                5 * std::sqrt(expected) + 5);
  }
}

TEST(ZipfSamplerTest, UniformWhenSIsZero) {
  ZipfSampler sampler(10, 0.0);
  for (size_t r = 1; r <= 10; ++r) {
    EXPECT_NEAR(sampler.Probability(r), 0.1, 1e-12);
  }
}

class RngBoundedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundedSweep, AlwaysBelowBound) {
  Rng rng(GetParam());
  const uint64_t bound = 1 + GetParam() * 37;
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundedSweep,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

}  // namespace
}  // namespace opthash

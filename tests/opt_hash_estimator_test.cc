#include "core/opt_hash_estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::core {
namespace {

// A small prefix with two frequency tiers and features that separate them.
std::vector<PrefixElement> TieredPrefix(size_t heavy, size_t light,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<PrefixElement> prefix;
  for (size_t i = 0; i < heavy; ++i) {
    prefix.push_back({.id = 1000 + i,
                      .frequency = 100.0 + static_cast<double>(i % 3),
                      .features = {5.0 + rng.NextGaussian() * 0.2}});
  }
  for (size_t i = 0; i < light; ++i) {
    prefix.push_back({.id = 2000 + i,
                      .frequency = 2.0 + static_cast<double>(i % 2),
                      .features = {-5.0 + rng.NextGaussian() * 0.2}});
  }
  return prefix;
}

OptHashConfig SmallConfig() {
  OptHashConfig config;
  config.total_buckets = 40;
  config.id_ratio = 0.3;
  config.lambda = 1.0;
  config.solver = SolverKind::kDp;
  config.classifier = ClassifierKind::kCart;
  return config;
}

TEST(OptHashConfigTest, Validation) {
  EXPECT_TRUE(SmallConfig().Validate().ok());
  OptHashConfig bad = SmallConfig();
  bad.total_buckets = 1;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.id_ratio = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.lambda = 2.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(OptHashEstimatorTest, TrainRejectsEmptyPrefix) {
  EXPECT_FALSE(OptHashEstimator::Train(SmallConfig(), {}).ok());
}

TEST(OptHashEstimatorTest, MemorySplitFollowsPaperFormula) {
  // n = b_total/(1+c), b = b_total - n.
  auto result = OptHashEstimator::Train(SmallConfig(), TieredPrefix(10, 15, 1));
  ASSERT_TRUE(result.ok());
  const OptHashEstimator& estimator = result.value();
  // b_total = 40, c = 0.3: id budget = floor(40/1.3) = 30, buckets = 10.
  EXPECT_EQ(estimator.num_buckets(), 10u);
  EXPECT_EQ(estimator.num_stored_ids(), 25u);  // All 25 fit within 30.
  EXPECT_EQ(estimator.MemoryBuckets(), 35u);
}

TEST(OptHashEstimatorTest, SubsamplesWhenPrefixExceedsBudget) {
  OptHashConfig config = SmallConfig();
  config.total_buckets = 26;  // id budget = 20, buckets = 6.
  auto result = OptHashEstimator::Train(config, TieredPrefix(20, 30, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_stored_ids(), 20u);
  // Heavy elements (frequency 100+) should dominate the sample.
  size_t heavy_kept = 0;
  for (const auto& [id, bucket] : result.value().table()) {
    if (id >= 1000 && id < 2000) ++heavy_kept;
  }
  EXPECT_GE(heavy_kept, 18u);
}

TEST(OptHashEstimatorTest, SeenElementEstimateIsBucketAverage) {
  auto result = OptHashEstimator::Train(SmallConfig(), TieredPrefix(5, 10, 3));
  ASSERT_TRUE(result.ok());
  const OptHashEstimator& estimator = result.value();
  // Heavy element: its bucket holds only heavy elements (frequencies
  // 100..102 across 5 heavy ids; with 10 buckets the DP separates tiers).
  const stream::StreamItem heavy{1000, nullptr};
  const double estimate = estimator.Estimate(heavy);
  EXPECT_GE(estimate, 99.0);
  EXPECT_LE(estimate, 103.0);
  const stream::StreamItem light{2000, nullptr};
  EXPECT_LE(estimator.Estimate(light), 4.0);
}

TEST(OptHashEstimatorTest, UpdateIncrementsOnlyTrackedElements) {
  auto result = OptHashEstimator::Train(SmallConfig(), TieredPrefix(5, 5, 4));
  ASSERT_TRUE(result.ok());
  OptHashEstimator& estimator = result.value();
  const stream::StreamItem tracked{1000, nullptr};
  const double before = estimator.Estimate(tracked);
  const auto bucket = static_cast<size_t>(estimator.BucketOf(tracked));
  const double bucket_count = estimator.BucketCount(bucket);
  estimator.Update(tracked);
  EXPECT_NEAR(estimator.Estimate(tracked), before + 1.0 / bucket_count, 1e-9);

  // Unknown id: static mode ignores it entirely.
  const stream::StreamItem unknown{999999, nullptr};
  const double unknown_before = estimator.Estimate(unknown);
  estimator.Update(unknown);
  EXPECT_DOUBLE_EQ(estimator.Estimate(unknown), unknown_before);
}

TEST(OptHashEstimatorTest, UnseenElementRoutedThroughClassifier) {
  auto result = OptHashEstimator::Train(SmallConfig(), TieredPrefix(8, 12, 5));
  ASSERT_TRUE(result.ok());
  const OptHashEstimator& estimator = result.value();
  // An unseen element whose features look "heavy" must get a heavy-tier
  // estimate; one that looks "light" a light-tier estimate.
  const std::vector<double> heavy_features = {5.0};
  const std::vector<double> light_features = {-5.0};
  const stream::StreamItem unseen_heavy{777777, &heavy_features};
  const stream::StreamItem unseen_light{888888, &light_features};
  EXPECT_GE(estimator.Estimate(unseen_heavy), 50.0);
  EXPECT_LE(estimator.Estimate(unseen_light), 10.0);
}

TEST(OptHashEstimatorTest, NoClassifierUnseenGetsZero) {
  OptHashConfig config = SmallConfig();
  config.classifier = ClassifierKind::kNone;
  auto result = OptHashEstimator::Train(config, TieredPrefix(5, 5, 6));
  ASSERT_TRUE(result.ok());
  const std::vector<double> features = {0.0};
  const stream::StreamItem unseen{424242, &features};
  EXPECT_EQ(result.value().BucketOf(unseen), -1);
  EXPECT_DOUBLE_EQ(result.value().Estimate(unseen), 0.0);
}

TEST(OptHashEstimatorTest, LambdaBelowOneRequiresFeatures) {
  OptHashConfig config = SmallConfig();
  config.lambda = 0.5;
  config.solver = SolverKind::kBcd;
  std::vector<PrefixElement> featureless = {{1, 5.0, {}}, {2, 9.0, {}}};
  EXPECT_FALSE(OptHashEstimator::Train(config, featureless).ok());
}

TEST(OptHashEstimatorTest, AllSolversProduceWorkingEstimators) {
  for (SolverKind solver :
       {SolverKind::kBcd, SolverKind::kDp, SolverKind::kExact}) {
    OptHashConfig config = SmallConfig();
    config.solver = solver;
    config.exact.time_limit_seconds = 2.0;
    auto result = OptHashEstimator::Train(config, TieredPrefix(5, 8, 7));
    ASSERT_TRUE(result.ok()) << SolverKindName(solver);
    const stream::StreamItem heavy{1000, nullptr};
    EXPECT_GT(result.value().Estimate(heavy), 50.0) << SolverKindName(solver);
  }
}

TEST(OptHashEstimatorTest, AllClassifiersProduceWorkingEstimators) {
  for (ClassifierKind classifier :
       {ClassifierKind::kLogisticRegression, ClassifierKind::kCart,
        ClassifierKind::kRandomForest}) {
    OptHashConfig config = SmallConfig();
    config.classifier = classifier;
    auto result = OptHashEstimator::Train(config, TieredPrefix(8, 12, 8));
    ASSERT_TRUE(result.ok()) << ClassifierKindName(classifier);
    const std::vector<double> heavy_features = {5.0};
    const stream::StreamItem unseen{31337, &heavy_features};
    EXPECT_GT(result.value().Estimate(unseen), 30.0)
        << ClassifierKindName(classifier);
  }
}

TEST(OptHashEstimatorTest, TrainingInfoPopulated) {
  auto result = OptHashEstimator::Train(SmallConfig(), TieredPrefix(10, 10, 9));
  ASSERT_TRUE(result.ok());
  const OptHashTrainingInfo& info = result.value().training_info();
  EXPECT_EQ(info.num_prefix_elements, 20u);
  EXPECT_EQ(info.num_sampled_elements, 20u);
  EXPECT_EQ(info.num_buckets, 10u);
  EXPECT_GE(info.total_train_seconds, 0.0);
  EXPECT_TRUE(IsValidAssignment(
      opt::HashingProblem{
          .frequencies = std::vector<double>(20, 1.0),
          .features = {},
          .num_buckets = 10,
          .lambda = 1.0,
      },
      info.solve_result.assignment));
}

TEST(OptHashEstimatorTest, BucketCountsConsistent) {
  auto result =
      OptHashEstimator::Train(SmallConfig(), TieredPrefix(10, 15, 10));
  ASSERT_TRUE(result.ok());
  const OptHashEstimator& estimator = result.value();
  double total_count = 0.0;
  for (size_t j = 0; j < estimator.num_buckets(); ++j) {
    total_count += estimator.BucketCount(j);
  }
  EXPECT_DOUBLE_EQ(total_count,
                   static_cast<double>(estimator.num_stored_ids()));
}

TEST(OptHashEstimatorTest, DeterministicGivenSeed) {
  auto a = OptHashEstimator::Train(SmallConfig(), TieredPrefix(10, 20, 11));
  auto b = OptHashEstimator::Train(SmallConfig(), TieredPrefix(10, 20, 11));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (uint64_t id : {1000u, 1005u, 2000u, 2010u}) {
    const stream::StreamItem item{id, nullptr};
    EXPECT_DOUBLE_EQ(a.value().Estimate(item), b.value().Estimate(item));
  }
}

TEST(OptHashEstimatorTest, KindNames) {
  EXPECT_STREQ(SolverKindName(SolverKind::kBcd), "bcd");
  EXPECT_STREQ(SolverKindName(SolverKind::kDp), "dp");
  EXPECT_STREQ(SolverKindName(SolverKind::kExact), "milp");
  EXPECT_STREQ(ClassifierKindName(ClassifierKind::kRandomForest), "rf");
  EXPECT_STREQ(ClassifierKindName(ClassifierKind::kNone), "none");
}

}  // namespace
}  // namespace opthash::core

// Tests for the model-bundle persistence layer (src/io/model_io.h): text
// and binary round trips must reproduce byte-identical query answers,
// formats must auto-detect, and the mmap-backed estimator view must agree
// with the fully deserialized estimator on stored-id queries.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/opt_hash_estimator.h"
#include "io/model_io.h"

namespace opthash::io {
namespace {

ModelBundle TrainedBundle(core::ClassifierKind classifier, uint64_t seed) {
  core::OptHashConfig config;
  config.total_buckets = 50;
  config.id_ratio = 0.5;
  config.solver = core::SolverKind::kDp;
  config.classifier = classifier;
  config.seed = seed;
  ModelBundle bundle;
  bundle.featurizer = stream::BagOfWordsFeaturizer(16);
  bundle.featurizer.Fit({{"alpha beta", 5.0},
                         {"beta gamma", 3.0},
                         {"delta", 1.0}});
  // The prefix features come from the bundle's own featurizer, exactly as
  // the CLI train path builds them — heavy ids carry "alpha"-ish queries,
  // light ids "delta"-ish ones, so classifiers have signal to fit.
  std::vector<core::PrefixElement> prefix;
  for (uint64_t i = 0; i < 15; ++i) {
    prefix.push_back({.id = 100 + i,
                      .frequency = 40.0 + static_cast<double>(i),
                      .features = bundle.featurizer.Featurize(
                          i % 2 == 0 ? "alpha beta" : "beta gamma alpha")});
  }
  for (uint64_t i = 0; i < 15; ++i) {
    prefix.push_back({.id = 300 + i,
                      .frequency = 2.0,
                      .features = bundle.featurizer.Featurize(
                          i % 2 == 0 ? "delta" : "delta delta")});
  }
  auto trained = core::OptHashEstimator::Train(config, prefix);
  EXPECT_TRUE(trained.ok());
  bundle.estimator = std::move(trained).value();
  return bundle;
}

void ExpectSameAnswers(const ModelBundle& a, const ModelBundle& b) {
  ASSERT_EQ(a.featurizer.VocabularySize(), b.featurizer.VocabularySize());
  for (uint64_t id : {100u, 107u, 300u, 314u}) {
    const stream::StreamItem item{id, nullptr};
    EXPECT_DOUBLE_EQ(a.estimator->Estimate(item),
                     b.estimator->Estimate(item))
        << id;
  }
  for (const char* text : {"alpha beta", "delta nine", ""}) {
    const std::vector<double> fa = a.featurizer.Featurize(text);
    const std::vector<double> fb = b.featurizer.Featurize(text);
    EXPECT_EQ(fa, fb);
    const stream::StreamItem qa{424242, &fa};
    const stream::StreamItem qb{424242, &fb};
    EXPECT_DOUBLE_EQ(a.estimator->Estimate(qa), b.estimator->Estimate(qb));
  }
}

class ModelIoFormatSweep
    : public ::testing::TestWithParam<core::ClassifierKind> {
 protected:
  // Parameterized instances run concurrently under `ctest -j`; the path
  // must be unique per instance or they overwrite each other's files.
  std::string UniquePath(const char* stem) {
    return ::testing::TempDir() + "/" + stem +
           std::to_string(static_cast<int>(GetParam()));
  }
};

TEST_P(ModelIoFormatSweep, BinaryRoundTripAnswersIdentically) {
  const ModelBundle bundle = TrainedBundle(GetParam(), 21);
  const std::string path = UniquePath("model_io_binary_");
  ASSERT_TRUE(SaveModelBundle(path, bundle, SnapshotFormat::kBinary).ok());
  auto format = DetectFileFormat(path);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(format.value(), SnapshotFormat::kBinary);
  // A binary bundle is a two-section container: featurizer + estimator
  // (the classifier rides inside the estimator payload, not as its own
  // section) — pinned so a layout change is a deliberate act.
  auto sections = PeekSectionTypes(path);
  ASSERT_TRUE(sections.ok()) << sections.status().ToString();
  EXPECT_EQ(sections.value(),
            (std::vector<SectionType>{SectionType::kFeaturizer,
                                      SectionType::kOptHashEstimator}));
  auto loaded = LoadModelBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameAnswers(bundle, loaded.value());
}

TEST_P(ModelIoFormatSweep, TextRoundTripAnswersIdentically) {
  const ModelBundle bundle = TrainedBundle(GetParam(), 22);
  const std::string path = UniquePath("model_io_text_");
  ASSERT_TRUE(SaveModelBundle(path, bundle, SnapshotFormat::kText).ok());
  auto format = DetectFileFormat(path);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ(format.value(), SnapshotFormat::kText);
  auto loaded = LoadModelBundle(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameAnswers(bundle, loaded.value());
}

INSTANTIATE_TEST_SUITE_P(
    Classifiers, ModelIoFormatSweep,
    ::testing::Values(core::ClassifierKind::kNone,
                      core::ClassifierKind::kLogisticRegression,
                      core::ClassifierKind::kCart,
                      core::ClassifierKind::kRandomForest));

TEST(ModelIoTest, BinaryEstimatorPayloadIsDeterministic) {
  const ModelBundle a = TrainedBundle(core::ClassifierKind::kCart, 30);
  const ModelBundle b = TrainedBundle(core::ClassifierKind::kCart, 30);
  ByteWriter wa;
  ByteWriter wb;
  a.estimator->SerializeBinary(wa);
  b.estimator->SerializeBinary(wb);
  EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(ModelIoTest, DetectRejectsForeignFiles) {
  const std::string path = ::testing::TempDir() + "/model_io_foreign.txt";
  std::ofstream(path) << "definitely not a model";
  EXPECT_FALSE(DetectFileFormat(path).ok());
  EXPECT_FALSE(LoadModelBundle(path).ok());
  EXPECT_FALSE(DetectFileFormat(::testing::TempDir() + "/missing.bin").ok());
}

TEST(ModelIoTest, BinaryLoadRejectsCorruption) {
  const ModelBundle bundle = TrainedBundle(core::ClassifierKind::kCart, 23);
  const std::string path = ::testing::TempDir() + "/model_io_corrupt.bin";
  ASSERT_TRUE(SaveModelBundle(path, bundle, SnapshotFormat::kBinary).ok());
  // Flip a byte near the end (inside the estimator payload).
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(-3, std::ios::end);
    file.put('\x55');
  }
  auto loaded = LoadModelBundle(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos);
}

TEST(ModelIoTest, BinaryTreeRejectsOutOfRangeLabel) {
  // A crafted single-leaf tree whose label exceeds num_classes must be
  // rejected at load, not abort Predict's bounds CHECK later.
  ByteWriter out;
  out.WriteU32(1);  // payload version
  out.WriteU32(0);  // reserved
  out.WriteU64(1);  // num_features
  out.WriteU64(2);  // num_classes
  out.WriteU64(1);  // node_count
  out.WriteU64(0);  // node: feature
  out.WriteDouble(0.0);
  out.WriteI32(-1);  // left
  out.WriteI32(-1);  // right
  out.WriteI32(7);   // label >= num_classes
  out.WriteU32(1);   // flags: leaf
  out.WriteDouble(0.0);
  out.WriteU64(1);  // num_samples
  ByteReader in(out.bytes().data(), out.size());
  EXPECT_FALSE(ml::DecisionTree::DeserializeBinary(in).ok());
}

TEST(ModelIoTest, BinaryTreeRejectsSelfReferentialNode) {
  // An internal node pointing at itself (a cycle) would hang Predict;
  // the child-follows-parent format invariant makes it rejectable.
  ByteWriter out;
  out.WriteU32(1);
  out.WriteU32(0);
  out.WriteU64(1);  // num_features
  out.WriteU64(2);  // num_classes
  out.WriteU64(1);  // node_count
  out.WriteU64(0);  // node: feature
  out.WriteDouble(0.5);
  out.WriteI32(0);  // left = self
  out.WriteI32(0);  // right = self
  out.WriteI32(0);  // label
  out.WriteU32(0);  // flags: internal
  out.WriteDouble(0.0);
  out.WriteU64(2);
  ByteReader in(out.bytes().data(), out.size());
  EXPECT_FALSE(ml::DecisionTree::DeserializeBinary(in).ok());
}

TEST(ModelIoTest, SketchSnapshotIsNotABundle) {
  // A single-sketch checkpoint is a valid snapshot but not a model bundle.
  SnapshotWriter writer;
  writer.AddSection(SectionType::kCountMinSketch, {0, 0, 0, 0});
  const std::string path = ::testing::TempDir() + "/model_io_sketch.bin";
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  auto loaded = LoadModelBundle(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bundle"), std::string::npos);
}

TEST(ModelIoTest, DeserializedBundleKeepsCounting) {
  const ModelBundle bundle = TrainedBundle(core::ClassifierKind::kNone, 24);
  const std::string path = ::testing::TempDir() + "/model_io_counting.bin";
  ASSERT_TRUE(SaveModelBundle(path, bundle, SnapshotFormat::kBinary).ok());
  auto loaded = LoadModelBundle(path);
  ASSERT_TRUE(loaded.ok());
  core::OptHashEstimator& live = *loaded.value().estimator;
  const stream::StreamItem item{100, nullptr};
  const double before = live.Estimate(item);
  const auto bucket = static_cast<size_t>(live.BucketOf(item));
  for (int rep = 0; rep < 8; ++rep) live.Update(item);
  EXPECT_NEAR(live.Estimate(item), before + 8.0 / live.BucketCount(bucket),
              1e-9);
}

TEST(MappedEstimatorViewTest, StoredIdQueriesMatchFullLoad) {
  const ModelBundle bundle =
      TrainedBundle(core::ClassifierKind::kRandomForest, 25);
  const std::string path = ::testing::TempDir() + "/model_io_mapped.bin";
  ASSERT_TRUE(SaveModelBundle(path, bundle, SnapshotFormat::kBinary).ok());

  auto view = MappedEstimatorView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().num_buckets(), bundle.estimator->num_buckets());
  EXPECT_EQ(view.value().num_stored_ids(),
            bundle.estimator->num_stored_ids());
  for (uint64_t id = 90; id < 330; ++id) {
    const stream::StreamItem item{id, nullptr};
    EXPECT_EQ(view.value().BucketOf(id), bundle.estimator->BucketOf(item))
        << id;
    EXPECT_DOUBLE_EQ(view.value().Estimate(id),
                     bundle.estimator->Estimate(item))
        << id;
  }
  // Ids outside the table have no classifier fallback in the view.
  EXPECT_EQ(view.value().BucketOf(987654321), -1);
  EXPECT_EQ(view.value().Estimate(987654321), 0.0);
}

TEST(MappedEstimatorViewTest, RejectsTextBundlesAndSketchSnapshots) {
  const ModelBundle bundle = TrainedBundle(core::ClassifierKind::kNone, 26);
  const std::string text_path = ::testing::TempDir() + "/model_io_v_t.txt";
  ASSERT_TRUE(SaveModelBundle(text_path, bundle, SnapshotFormat::kText).ok());
  EXPECT_FALSE(MappedEstimatorView::Open(text_path).ok());

  SnapshotWriter writer;
  writer.AddSection(SectionType::kMisraGries, {0, 0, 0, 0});
  const std::string sketch_path = ::testing::TempDir() + "/model_io_v_s.bin";
  ASSERT_TRUE(writer.WriteToFile(sketch_path).ok());
  EXPECT_FALSE(MappedEstimatorView::Open(sketch_path).ok());
}

}  // namespace
}  // namespace opthash::io

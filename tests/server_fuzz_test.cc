// Deterministic protocol fuzz over both serving transports: seeded
// frame mutations (bit flips, truncations, length-prefix corruption,
// splices, pure garbage) thrown at a live daemon. The invariants under
// fuzz are the daemon's survival contract: it never crashes, answers
// protocol violations with one error frame and a hangup, and always
// comes back to serve the next well-formed client. Every socket carries
// a receive timeout so a wedged daemon fails the test instead of
// hanging the suite.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/socket_io.h"
#include "server/tcp_listener.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#endif

#ifndef _WIN32

namespace opthash::server {
namespace {

std::string FreshSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/opthash_fuzz_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::unique_ptr<ServedModel> FreshCms() {
  FreshSketchSpec spec;
  spec.kind = "cms";
  spec.width = 512;
  spec.depth = 4;
  spec.seed = 3;
  // Serve a windowed ring so mutated window-stats frames exercise the
  // real reply path, not just the FailedPrecondition shortcut. Windows
  // big enough that the final sanity queries stay in the live window.
  spec.windows = 3;
  spec.window_items = 1000;
  auto model = CreateServedSketch(spec);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

void SetRecvTimeout(int fd, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Walks the byte stream exactly like the server's frame parser and
/// reports whether any complete frame in it is a valid kShutdown — bare
/// or wrapped in a scoped envelope the server would unwrap and obey —
/// the one mutation outcome the fuzzer must not deliver, or it would
/// stop the daemon mid-run by *succeeding*.
bool ContainsValidShutdown(const std::vector<uint8_t>& bytes) {
  size_t head = 0;
  while (bytes.size() - head >= kFrameHeaderSize) {
    uint32_t length = 0;
    std::memcpy(&length, bytes.data() + head, sizeof(length));
    if (length > kMaxFramePayload) return false;  // Parser errors here.
    if (bytes.size() - head - kFrameHeaderSize < length) return false;
    const uint8_t* payload = bytes.data() + head + kFrameHeaderSize;
    if (length == 1 &&
        payload[0] == static_cast<uint8_t>(MessageType::kShutdown)) {
      return true;
    }
    // Scoped envelope (u8 type, u8 version, u32 model id) around a bare
    // shutdown: a bit flip on an inner type byte can produce one.
    // Conservatively skip whatever the model id says — NotFound replies
    // are cheap to forgo, an obeyed shutdown ends the run.
    if (length == 7 &&
        payload[0] == static_cast<uint8_t>(MessageType::kScopedRequest) &&
        payload[6] == static_cast<uint8_t>(MessageType::kShutdown)) {
      return true;
    }
    head += kFrameHeaderSize + length;
  }
  return false;
}

/// A valid request frame to mutate (never kShutdown as the base),
/// covering every request type: top-k, metrics, scoped-request
/// envelopes and the windowed-counting window-stats verb.
std::vector<uint8_t> ValidBaseFrame(Rng& rng) {
  std::vector<uint8_t> frame;
  switch (rng.NextBounded(9)) {
    case 0:
      EncodeEmptyMessage(MessageType::kPing, frame);
      break;
    case 1:
      EncodeEmptyMessage(MessageType::kStats, frame);
      break;
    case 2:
      EncodeEmptyMessage(MessageType::kSnapshot, frame);
      break;
    case 3:
      EncodeTopKRequest(1 + static_cast<uint32_t>(rng.NextBounded(64)),
                        frame);
      break;
    case 4:
      EncodeEmptyMessage(MessageType::kMetrics, frame);
      break;
    case 5: {  // Scoped envelope around a harmless inner request —
               // including window-stats, so mutations hit window
               // metadata riding inside envelopes.
      std::vector<uint8_t> inner;
      switch (rng.NextBounded(3)) {
        case 0:
          EncodeEmptyMessage(MessageType::kPing, inner);
          break;
        case 1:
          EncodeEmptyMessage(MessageType::kWindowStats, inner);
          break;
        default:
          EncodeTopKRequest(1 + static_cast<uint32_t>(rng.NextBounded(16)),
                            inner);
          break;
      }
      RequestHeader header;
      header.model_id = static_cast<uint32_t>(rng.NextBounded(3));
      EncodeScopedRequest(
          header,
          Span<const uint8_t>(inner.data() + kFrameHeaderSize,
                              inner.size() - kFrameHeaderSize),
          frame);
      break;
    }
    case 6:
      EncodeEmptyMessage(MessageType::kWindowStats, frame);
      break;
    default: {
      std::vector<uint64_t> keys(1 + rng.NextBounded(32));
      for (uint64_t& key : keys) key = rng.NextBounded(10000);
      const MessageType type = rng.NextBounded(2) == 0
                                   ? MessageType::kQuery
                                   : MessageType::kIngest;
      EncodeKeyRequest(type,
                       Span<const uint64_t>(keys.data(), keys.size()),
                       frame);
      break;
    }
  }
  return frame;
}

std::vector<uint8_t> MutatedFrames(Rng& rng) {
  std::vector<uint8_t> bytes = ValidBaseFrame(rng);
  switch (rng.NextBounded(6)) {
    case 0: {  // Pure garbage, no structure at all.
      bytes.resize(rng.NextBounded(64));
      for (uint8_t& byte : bytes) {
        byte = static_cast<uint8_t>(rng.NextBounded(256));
      }
      break;
    }
    case 1: {  // Bit flips anywhere, header included.
      const size_t flips = 1 + rng.NextBounded(8);
      for (size_t i = 0; i < flips; ++i) {
        const size_t at = rng.NextBounded(bytes.size());
        bytes[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
      }
      break;
    }
    case 2: {  // Truncation: the peer will vanish mid-frame.
      bytes.resize(rng.NextBounded(bytes.size()));
      break;
    }
    case 3: {  // Corrupted length prefix, sometimes past the frame cap.
      uint32_t length = static_cast<uint32_t>(rng.NextUint64());
      if (rng.NextBounded(2) == 0) {
        length = kMaxFramePayload + 1 +
                 static_cast<uint32_t>(rng.NextBounded(1u << 20));
      }
      std::memcpy(bytes.data(), &length, sizeof(length));
      break;
    }
    case 4: {  // Valid frame, junk, valid frame: mid-stream desync.
      std::vector<uint8_t> spliced = bytes;
      const size_t junk = 1 + rng.NextBounded(9);
      for (size_t i = 0; i < junk; ++i) {
        spliced.push_back(static_cast<uint8_t>(rng.NextBounded(256)));
      }
      const std::vector<uint8_t> tail = ValidBaseFrame(rng);
      spliced.insert(spliced.end(), tail.begin(), tail.end());
      bytes = spliced;
      break;
    }
    default: {  // Type-byte confusion in an otherwise valid frame.
      if (bytes.size() > kFrameHeaderSize) {
        bytes[kFrameHeaderSize] =
            static_cast<uint8_t>(rng.NextBounded(256));
      }
      break;
    }
  }
  return bytes;
}

struct FuzzTarget {
  std::string name;
  std::function<Result<int>()> connect;
};

/// The recovery probe: a fresh, well-formed session must get a correct
/// pong within the timeout, whatever the previous session did.
void ExpectServesWellFormedClient(const FuzzTarget& target) {
  auto fd = target.connect();
  ASSERT_TRUE(fd.ok()) << target.name << ": "
                       << fd.status().ToString();
  SetRecvTimeout(fd.value(), 5000);
  std::vector<uint8_t> frame;
  EncodeEmptyMessage(MessageType::kPing, frame);
  ASSERT_TRUE(
      WriteAll(fd.value(), Span<const uint8_t>(frame.data(), frame.size()))
          .ok())
      << target.name;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFramePayload(fd.value(), payload).ok())
      << target.name << ": daemon did not answer a well-formed ping";
  auto type =
      PeekMessageType(Span<const uint8_t>(payload.data(), payload.size()));
  ASSERT_TRUE(type.ok()) << target.name;
  EXPECT_EQ(type.value(), MessageType::kPong) << target.name;
  CloseSocket(fd.value());
}

void FuzzOneTransport(const FuzzTarget& target, Server& server,
                      uint64_t seed, int iterations) {
  Rng rng(seed);
  int skipped = 0;
  for (int i = 0; i < iterations; ++i) {
    const std::vector<uint8_t> bytes = MutatedFrames(rng);
    if (ContainsValidShutdown(bytes)) {
      ++skipped;  // Stopping the daemon would be obeying, not surviving.
      continue;
    }
    auto fd = target.connect();
    ASSERT_TRUE(fd.ok()) << target.name << " iteration " << i << ": "
                         << fd.status().ToString();
    SetRecvTimeout(fd.value(), 100);
    // The daemon may hang up mid-write on a protocol error; that is a
    // legal outcome, not a test failure.
    (void)WriteAll(fd.value(),
                   Span<const uint8_t>(bytes.data(), bytes.size()));
    // Drain whatever it answered, best effort: valid mutations get real
    // replies, violations get one error frame and EOF, incomplete
    // frames get silence (the server is waiting, we just leave).
    std::vector<uint8_t> payload;
    for (int replies = 0; replies < 4; ++replies) {
      if (!ReadFramePayload(fd.value(), payload).ok()) break;
    }
    CloseSocket(fd.value());
    ASSERT_TRUE(server.running())
        << target.name << ": daemon died at iteration " << i;
    if (i % 15 == 0) ExpectServesWellFormedClient(target);
  }
  // The mutation space must actually exercise the parser, not trip the
  // shutdown guard every time.
  EXPECT_LT(skipped, iterations / 2) << target.name;
  ExpectServesWellFormedClient(target);
}

TEST(ServerFuzzTest, MutatedFramesNeverKillTheDaemonOnEitherTransport) {
  ServerConfig config;
  config.socket_path = FreshSocketPath();
  config.listen_address = "127.0.0.1:0";
  config.accept_poll_millis = 20;
  Server server(config, FreshCms());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.tcp_port(), 0);
  const HostPort tcp{"127.0.0.1", server.tcp_port()};

  const FuzzTarget over_unix{
      "unix", [&] { return ConnectUnix(config.socket_path); }};
  const FuzzTarget over_tcp{"tcp", [&] { return ConnectTcp(tcp); }};

  FuzzOneTransport(over_unix, server, /*seed=*/0x5eed0001, 120);
  FuzzOneTransport(over_tcp, server, /*seed=*/0x5eed0002, 120);

  // After 240 hostile sessions, normal service still works end to end.
  auto client = Client::Connect(config.socket_path);
  ASSERT_TRUE(client.ok());
  const std::vector<uint64_t> keys = {1, 2, 3, 2, 1, 1};
  auto acked = client.value().Ingest(keys);
  ASSERT_TRUE(acked.ok()) << acked.status().ToString();
  std::vector<double> estimates;
  const std::vector<uint64_t> queries = {1, 2, 3};
  ASSERT_TRUE(client.value().Query(queries, estimates).ok());
  EXPECT_EQ(estimates[0], 3.0);
  EXPECT_EQ(estimates[1], 2.0);
  EXPECT_EQ(estimates[2], 1.0);
  server.RequestShutdown();
}

TEST(ServerFuzzTest, ChunkedWellFormedFramesAnswerNormally) {
  // A torn but ultimately well-formed stream is not a violation: a query
  // dribbled one byte at a time must answer exactly like one write.
  ServerConfig config;
  config.listen_address = "127.0.0.1:0";
  config.accept_poll_millis = 20;
  Server server(config, FreshCms());
  ASSERT_TRUE(server.Start().ok());
  const HostPort tcp{"127.0.0.1", server.tcp_port()};

  auto fd = ConnectTcp(tcp);
  ASSERT_TRUE(fd.ok());
  SetRecvTimeout(fd.value(), 5000);
  std::vector<uint8_t> frame;
  const std::vector<uint64_t> keys = {42, 7};
  EncodeKeyRequest(MessageType::kQuery,
                   Span<const uint64_t>(keys.data(), keys.size()), frame);
  for (uint8_t byte : frame) {
    ASSERT_TRUE(WriteAll(fd.value(), Span<const uint8_t>(&byte, 1)).ok());
  }
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFramePayload(fd.value(), payload).ok());
  std::vector<double> estimates;
  ASSERT_TRUE(
      DecodeEstimatesResponse(
          Span<const uint8_t>(payload.data(), payload.size()), estimates)
          .ok());
  ASSERT_EQ(estimates.size(), 2u);
  EXPECT_EQ(estimates[0], 0.0);
  EXPECT_EQ(estimates[1], 0.0);
  CloseSocket(fd.value());
  server.RequestShutdown();
}

}  // namespace
}  // namespace opthash::server

#endif  // !_WIN32

// Allocation-freedom regression tests for the query hot path (PR 4's
// bugfix): the scalar learned estimate used to heap-allocate a dense
// ~vocab-dim feature vector (plus classifier scratch) per lookup. These
// tests replace the global operator new/delete with counting versions and
// assert that a *warm* query path — scalar and batched, featurization
// included — performs zero heap allocations. Works under ASan too (the
// counting operators forward to malloc/free, which ASan intercepts).

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/span.h"
#include "core/baseline_estimators.h"
#include "core/opt_hash_estimator.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "stream/features.h"

namespace {
std::atomic<size_t> g_allocation_count{0};
}  // namespace

// Counting global allocator. Every operator new in the binary funnels
// through here; the tests read the counter around warmed hot-path calls.
void* operator new(std::size_t size) {
  ++g_allocation_count;
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocation_count;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace opthash {
namespace {

using core::ClassifierKind;
using core::OptHashConfig;
using core::OptHashEstimator;
using core::OptHashQueryWorkspace;
using core::PrefixElement;
using core::SolverKind;
using stream::StreamItem;

// Allocations performed by `fn` (exact count).
template <typename Fn>
size_t AllocationsIn(Fn fn) {
  const size_t before = g_allocation_count.load();
  fn();
  return g_allocation_count.load() - before;
}

TEST(QueryAllocTest, FeaturizeOutParameterIsAllocationFreeWhenWarm) {
  stream::BagOfWordsFeaturizer featurizer(32);
  featurizer.Fit({{"alpha beta gamma delta", 5.0}, {"epsilon zeta", 2.0}});
  const std::string text = "alpha gamma, epsilon query. tail";
  std::vector<double> out;
  featurizer.Featurize(text, out);  // Warm-up sizes the buffer.
  EXPECT_EQ(out.size(), featurizer.FeatureDim());
  const size_t allocations = AllocationsIn([&] {
    for (int i = 0; i < 100; ++i) featurizer.Featurize(text, out);
  });
  EXPECT_EQ(allocations, 0u);
  // And it computes the same features as the allocating overload.
  EXPECT_EQ(out, featurizer.Featurize(text));
}

OptHashEstimator TrainSmall(ClassifierKind classifier) {
  Rng rng(7);
  std::vector<PrefixElement> prefix;
  for (size_t i = 0; i < 24; ++i) {
    const bool heavy = i < 8;
    prefix.push_back({.id = 100 + i,
                      .frequency = heavy ? 60.0 : 2.0,
                      .features = {heavy ? 4.0 + rng.NextGaussian() * 0.1
                                         : -4.0 + rng.NextGaussian() * 0.1,
                                   rng.NextGaussian()}});
  }
  OptHashConfig config;
  config.total_buckets = 26;
  config.id_ratio = 0.3;
  config.solver = SolverKind::kDp;
  config.classifier = classifier;
  config.rf.num_trees = 4;
  auto trained = OptHashEstimator::Train(config, prefix);
  OPTHASH_CHECK(trained.ok());
  return std::move(trained).value();
}

TEST(QueryAllocTest, ScalarLearnedEstimateIsAllocationFreeWhenWarm) {
  // Every classifier kind: the scalar path routes through the batch
  // machinery with batch = 1, and the classifiers' thread-local scratch
  // must hold after one warm-up call.
  for (const ClassifierKind kind :
       {ClassifierKind::kNone, ClassifierKind::kLogisticRegression,
        ClassifierKind::kCart, ClassifierKind::kRandomForest}) {
    const OptHashEstimator estimator = TrainSmall(kind);
    const std::vector<double> stored_features = {4.0, 0.0};
    const std::vector<double> unseen_features = {-4.2, 0.3};
    const StreamItem stored{100, &stored_features};
    const StreamItem unseen{9999, &unseen_features};
    (void)estimator.Estimate(stored);  // Warm the thread-local workspace.
    (void)estimator.Estimate(unseen);
    const size_t allocations = AllocationsIn([&] {
      for (int i = 0; i < 100; ++i) {
        (void)estimator.Estimate(stored);
        (void)estimator.Estimate(unseen);
        (void)estimator.Estimate({777, nullptr});
      }
    });
    EXPECT_EQ(allocations, 0u)
        << "classifier kind " << static_cast<int>(kind);
  }
}

TEST(QueryAllocTest, BatchLearnedEstimateIsAllocationFreeWhenWarm) {
  const OptHashEstimator estimator = TrainSmall(ClassifierKind::kRandomForest);
  Rng rng(11);
  std::vector<std::vector<double>> feature_store;
  feature_store.reserve(256);
  std::vector<StreamItem> items;
  for (size_t i = 0; i < 256; ++i) {
    feature_store.push_back({rng.NextDouble(-5.0, 5.0), rng.NextGaussian()});
    items.push_back({90 + rng.NextBounded(60), &feature_store.back()});
  }
  std::vector<double> out(items.size());
  OptHashQueryWorkspace workspace;
  const auto run = [&] {
    estimator.EstimateBatch(Span<const StreamItem>(items.data(), items.size()),
                            Span<double>(out.data(), out.size()), workspace);
  };
  run();  // Warm-up sizes the workspace.
  const size_t allocations = AllocationsIn([&] {
    for (int i = 0; i < 20; ++i) run();
  });
  EXPECT_EQ(allocations, 0u);
}

TEST(QueryAllocTest, SketchBatchQueriesAreAllocationFree) {
  Rng rng(13);
  std::vector<uint64_t> stream(4000);
  for (auto& key : stream) key = rng.NextBounded(500);
  std::vector<uint64_t> queries(512);
  for (auto& key : queries) key = rng.NextBounded(800);

  sketch::CountMinSketch cms(256, 4, 3);
  cms.UpdateBatch(stream);
  sketch::CountSketch countsketch(256, 5, 3);
  countsketch.UpdateBatch(stream);

  std::vector<uint64_t> unsigned_out(queries.size());
  std::vector<int64_t> signed_out(queries.size());
  // Warm-up (CountSketch's deep-sketch fallback path is thread-local).
  cms.EstimateBatch(Span<const uint64_t>(queries.data(), queries.size()),
                    Span<uint64_t>(unsigned_out.data(), unsigned_out.size()));
  countsketch.EstimateBatch(
      Span<const uint64_t>(queries.data(), queries.size()),
      Span<int64_t>(signed_out.data(), signed_out.size()));
  const size_t allocations = AllocationsIn([&] {
    for (int i = 0; i < 20; ++i) {
      cms.EstimateBatch(
          Span<const uint64_t>(queries.data(), queries.size()),
          Span<uint64_t>(unsigned_out.data(), unsigned_out.size()));
      countsketch.EstimateBatch(
          Span<const uint64_t>(queries.data(), queries.size()),
          Span<int64_t>(signed_out.data(), signed_out.size()));
      for (uint64_t key : queries) {
        (void)cms.Estimate(key);
        (void)countsketch.Estimate(key);
      }
    }
  });
  EXPECT_EQ(allocations, 0u);
}

}  // namespace
}  // namespace opthash

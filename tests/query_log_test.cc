#include "stream/query_log.h"

#include <cmath>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

namespace opthash::stream {
namespace {

QueryLogConfig SmallConfig() {
  QueryLogConfig config;
  config.num_queries = 5000;
  config.arrivals_per_day = 2000;
  config.num_days = 10;
  config.seed = 1;
  return config;
}

TEST(QueryLogConfigTest, Validation) {
  EXPECT_TRUE(SmallConfig().Validate().ok());
  QueryLogConfig bad = SmallConfig();
  bad.num_queries = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.arrivals_per_day = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.num_days = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = SmallConfig();
  bad.zipf_s = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(QueryLogTest, HeadQueriesAreNavigational) {
  QueryLog log(SmallConfig());
  // Rank 1 is a bare brand ("google"-like), rank 2 a www form.
  EXPECT_EQ(log.QueryText(1), "google");
  EXPECT_EQ(log.QueryText(2).substr(0, 4), "www.");
  EXPECT_NE(log.QueryText(2).find("google"), std::string::npos);
}

TEST(QueryLogTest, TailQueriesAreLongMultiWord) {
  // Tail tier starts past rank 6000, so use a universe deep enough to
  // sample it.
  QueryLogConfig config = SmallConfig();
  config.num_queries = 20000;
  QueryLog log(config);
  auto avg_words = [&](size_t lo, size_t hi) {
    double total = 0.0;
    for (size_t r = lo; r <= hi; ++r) {
      const std::string& text = log.QueryText(r);
      total += 1.0 + static_cast<double>(
                         std::count(text.begin(), text.end(), ' '));
    }
    return total / static_cast<double>(hi - lo + 1);
  };
  EXPECT_LT(avg_words(1, 50), 1.5);
  EXPECT_GT(avg_words(15000, 15500), 3.0);
}

TEST(QueryLogTest, TextLengthCorrelatesWithRank) {
  QueryLogConfig config = SmallConfig();
  config.num_queries = 20000;
  QueryLog log(config);
  double head_len = 0.0;
  double tail_len = 0.0;
  for (size_t r = 1; r <= 100; ++r) {
    head_len += static_cast<double>(log.QueryText(r).size());
  }
  for (size_t r = 19901; r <= 20000; ++r) {
    tail_len += static_cast<double>(log.QueryText(r).size());
  }
  EXPECT_GT(tail_len, 1.5 * head_len);
}

TEST(QueryLogTest, DayStreamsFollowZipf) {
  QueryLog log(SmallConfig());
  std::unordered_map<size_t, size_t> counts;
  for (size_t day = 0; day < 10; ++day) {
    for (size_t rank : log.GenerateDay(day)) ++counts[rank];
  }
  // 20000 arrivals: rank-1 count / rank-10 count ~ 10^0.82 ~ 6.6.
  ASSERT_GT(counts[1], 0u);
  ASSERT_GT(counts[10], 0u);
  const double ratio =
      static_cast<double>(counts[1]) / static_cast<double>(counts[10]);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 14.0);
}

TEST(QueryLogTest, HeadQueriesPersistAcrossDays) {
  // The §7 premise: "popular search queries tend to appear consistently
  // across multiple days". Every head rank must appear every day.
  QueryLog log(SmallConfig());
  for (size_t day = 0; day < 10; ++day) {
    const std::vector<size_t> arrivals = log.GenerateDay(day);
    std::set<size_t> present(arrivals.begin(), arrivals.end());
    for (size_t rank = 1; rank <= 10; ++rank) {
      EXPECT_TRUE(present.count(rank)) << "day " << day << " rank " << rank;
    }
  }
}

TEST(QueryLogTest, TailChurnsAcrossDays) {
  // Tail queries appear on some days and not others.
  QueryLog log(SmallConfig());
  const std::vector<size_t> day0_arrivals = log.GenerateDay(0);
  const std::vector<size_t> day1_arrivals = log.GenerateDay(1);
  std::set<size_t> day0(day0_arrivals.begin(), day0_arrivals.end());
  std::set<size_t> day1(day1_arrivals.begin(), day1_arrivals.end());
  size_t only_day1 = 0;
  for (size_t rank : day1) {
    if (!day0.count(rank)) ++only_day1;
  }
  EXPECT_GT(only_day1, 100u);
}

TEST(QueryLogTest, DaysAreDeterministic) {
  QueryLog a(SmallConfig());
  QueryLog b(SmallConfig());
  EXPECT_EQ(a.GenerateDay(3), b.GenerateDay(3));
  EXPECT_NE(a.GenerateDay(3), a.GenerateDay(4));
}

TEST(QueryLogTest, TextsAreStableAcrossUniverseSizes) {
  // The per-rank RNG makes texts independent of num_queries, so scaling
  // the universe doesn't change head query texts.
  QueryLogConfig small = SmallConfig();
  QueryLogConfig large = SmallConfig();
  large.num_queries = 20000;
  QueryLog small_log(small);
  QueryLog large_log(large);
  for (size_t rank = 1; rank <= 5000; rank += 500) {
    EXPECT_EQ(small_log.QueryText(rank), large_log.QueryText(rank));
  }
}

TEST(QueryLogTest, ZipfAnchorRatiosMatchPaperCalibration) {
  // The paper's AOL anchors give f(1)/f(10) ~ 6.7, f(1)/f(100) ~ 48,
  // f(1)/f(1000) ~ 272. With s = 0.82 the generator reproduces these.
  QueryLogConfig config;
  config.num_queries = 50000;
  QueryLog log(config);
  const double p1 = log.Probability(1);
  EXPECT_NEAR(p1 / log.Probability(10), 251463.0 / 37436.0, 0.7);
  EXPECT_NEAR(p1 / log.Probability(100), 251463.0 / 5237.0, 5.0);
  EXPECT_NEAR(p1 / log.Probability(1000), 251463.0 / 926.0, 35.0);
}

TEST(QueryLogTest, QueryIdsAreRanks) {
  QueryLog log(SmallConfig());
  EXPECT_EQ(log.QueryId(1), 1u);
  EXPECT_EQ(log.QueryId(777), 777u);
}

TEST(QueryLogTest, AllTextsNonEmptyAndUnique16CharPrefixNotRequired) {
  QueryLog log(SmallConfig());
  for (size_t rank = 1; rank <= log.NumQueries(); ++rank) {
    EXPECT_FALSE(log.QueryText(rank).empty());
  }
}

}  // namespace
}  // namespace opthash::stream

// Merge-semantics coverage for every sketch in src/sketch/: linear
// sketches merge *exactly* (two half-trace sketches equal one full-trace
// sketch, counter for counter), and the counter-based summaries merge
// within their documented deterministic bounds.

#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/span.h"
#include "sketch/ams_sketch.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/learned_count_min.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"

namespace opthash::sketch {
namespace {

// A Zipf-ish trace over `universe` keys, plus its exact counts.
std::vector<uint64_t> MakeTrace(size_t length, size_t universe, uint64_t seed,
                                std::unordered_map<uint64_t, uint64_t>* truth) {
  Rng rng(seed);
  ZipfSampler zipf(universe, 1.1);
  std::vector<uint64_t> trace(length);
  for (auto& key : trace) {
    key = zipf.Sample(rng);
    if (truth != nullptr) ++(*truth)[key];
  }
  return trace;
}

template <typename Sketch>
void IngestHalves(const std::vector<uint64_t>& trace, Sketch& first,
                  Sketch& second) {
  const size_t half = trace.size() / 2;
  first.UpdateBatch(Span<const uint64_t>(trace.data(), half));
  second.UpdateBatch(
      Span<const uint64_t>(trace.data() + half, trace.size() - half));
}

TEST(CountMinMergeTest, HalfTraceMergeEqualsFullTrace) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(20000, 800, 3, &truth);

  CountMinSketch full(256, 4, 9);
  full.UpdateBatch(Span<const uint64_t>(trace));

  CountMinSketch first(256, 4, 9), second(256, 4, 9);
  IngestHalves(trace, first, second);
  ASSERT_TRUE(first.Merge(second).ok());

  EXPECT_EQ(first.total_count(), full.total_count());
  for (const auto& [key, count] : truth) {
    EXPECT_EQ(first.Estimate(key), full.Estimate(key));
  }
}

TEST(CountMinMergeTest, UpdateBatchMatchesUpdateLoop) {
  const auto trace = MakeTrace(5000, 300, 4, nullptr);
  CountMinSketch batched(128, 3, 5), looped(128, 3, 5);
  batched.UpdateBatch(Span<const uint64_t>(trace));
  for (uint64_t key : trace) looped.Update(key);
  EXPECT_EQ(batched.total_count(), looped.total_count());
  for (uint64_t key = 1; key <= 300; ++key) {
    EXPECT_EQ(batched.Estimate(key), looped.Estimate(key));
  }
}

TEST(CountMinMergeTest, RejectsIncompatibleSketches) {
  CountMinSketch base(64, 4, 1);
  CountMinSketch wrong_width(65, 4, 1);
  CountMinSketch wrong_depth(64, 3, 1);
  CountMinSketch wrong_seed(64, 4, 2);
  CountMinSketch wrong_mode(64, 4, 1, /*conservative_update=*/true);
  EXPECT_FALSE(base.Merge(wrong_width).ok());
  EXPECT_FALSE(base.Merge(wrong_depth).ok());
  EXPECT_FALSE(base.Merge(wrong_seed).ok());
  EXPECT_FALSE(base.Merge(wrong_mode).ok());
  EXPECT_FALSE(base.Merge(base).ok());
}

TEST(CountMinMergeTest, ConservativeMergeNeverUnderestimates) {
  // Conservative merges are not identical to sequential conservative
  // ingestion, but the one-sided guarantee must survive the merge.
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(20000, 500, 5, &truth);
  CountMinSketch first(64, 3, 7, true), second(64, 3, 7, true);
  IngestHalves(trace, first, second);
  ASSERT_TRUE(first.Merge(second).ok());
  for (const auto& [key, count] : truth) {
    EXPECT_GE(first.Estimate(key), count);
  }
}

TEST(CountMinMergeTest, ConservativeMergeUpperBoundUnderPermutedOrders) {
  // Regression for the PR 2 note on conservative Merge being
  // order-sensitive (semantics now documented on CountMinSketch::Merge):
  // the shard counters depend on how the stream was partitioned and on
  // when updates interleave with merges, but *every* merge order must
  // keep estimates an upper bound on the true counts, because each
  // shard's per-level minimum dominates its substream and
  // min_i(a_i + b_i) >= min_i a_i + min_i b_i.
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(18000, 400, 21, &truth);
  const size_t third = trace.size() / 3;
  const auto shard_of = [&](size_t s) {
    CountMinSketch shard(64, 3, 7, /*conservative_update=*/true);
    const size_t begin = s * third;
    const size_t end = s == 2 ? trace.size() : begin + third;
    shard.UpdateBatch(Span<const uint64_t>(trace.data() + begin, end - begin));
    return shard;
  };

  const size_t orders[][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                              {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  uint64_t reference_checksum = 0;
  for (size_t o = 0; o < 6; ++o) {
    CountMinSketch merged = shard_of(orders[o][0]);
    CountMinSketch mid = shard_of(orders[o][1]);
    CountMinSketch last = shard_of(orders[o][2]);
    ASSERT_TRUE(merged.Merge(mid).ok());
    ASSERT_TRUE(merged.Merge(last).ok());
    uint64_t checksum = 0;
    for (const auto& [key, count] : truth) {
      const uint64_t estimate = merged.Estimate(key);
      ASSERT_GE(estimate, count) << "merge order " << o << " key " << key;
      checksum += estimate * (key + 1);
    }
    // Merging frozen shards is plain counter addition, so the *merge*
    // order itself commutes; only ingestion interleaving may differ.
    if (o == 0) reference_checksum = checksum;
    EXPECT_EQ(checksum, reference_checksum) << "merge order " << o;
  }

  // The genuinely order-sensitive scenario: keep ingesting conservatively
  // *after* a merge. The result may differ from any single-stream run,
  // but the upper bound must still hold for the doubled trace.
  CountMinSketch resumed = shard_of(0);
  ASSERT_TRUE(resumed.Merge(shard_of(1)).ok());
  ASSERT_TRUE(resumed.Merge(shard_of(2)).ok());
  resumed.UpdateBatch(Span<const uint64_t>(trace));
  for (const auto& [key, count] : truth) {
    ASSERT_GE(resumed.Estimate(key), 2 * count) << "post-merge ingest";
  }
}

TEST(CountMinMergeTest, EmptyCloneSharesGeometryAndHashes) {
  const auto trace = MakeTrace(5000, 200, 6, nullptr);
  CountMinSketch sketch(128, 4, 11);
  sketch.UpdateBatch(Span<const uint64_t>(trace));
  CountMinSketch clone = sketch.EmptyClone();
  EXPECT_EQ(clone.total_count(), 0u);
  EXPECT_EQ(clone.width(), sketch.width());
  EXPECT_EQ(clone.depth(), sketch.depth());
  EXPECT_EQ(clone.seed(), sketch.seed());
  // Mergeable into the original => identical hash draws.
  EXPECT_TRUE(sketch.Merge(clone).ok());
}

TEST(CountSketchMergeTest, HalfTraceMergeEqualsFullTrace) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(20000, 800, 13, &truth);

  CountSketch full(256, 5, 17);
  full.UpdateBatch(Span<const uint64_t>(trace));

  CountSketch first(256, 5, 17), second(256, 5, 17);
  IngestHalves(trace, first, second);
  ASSERT_TRUE(first.Merge(second).ok());

  for (const auto& [key, count] : truth) {
    EXPECT_EQ(first.Estimate(key), full.Estimate(key));
  }
}

TEST(CountSketchMergeTest, RejectsIncompatibleSketches) {
  CountSketch base(64, 5, 1);
  CountSketch wrong_seed(64, 5, 2);
  CountSketch wrong_width(32, 5, 1);
  EXPECT_FALSE(base.Merge(wrong_seed).ok());
  EXPECT_FALSE(base.Merge(wrong_width).ok());
  EXPECT_FALSE(base.Merge(base).ok());
}

TEST(AmsMergeTest, HalfTraceMergeEqualsFullTrace) {
  const auto trace = MakeTrace(20000, 600, 19, nullptr);

  AmsSketch full(5, 8, 23);
  full.UpdateBatch(Span<const uint64_t>(trace));

  AmsSketch first(5, 8, 23), second(5, 8, 23);
  IngestHalves(trace, first, second);
  ASSERT_TRUE(first.Merge(second).ok());

  // Atoms are linear, so the merged F2 estimate is *exactly* the
  // full-trace estimate.
  EXPECT_DOUBLE_EQ(first.EstimateF2(), full.EstimateF2());
}

TEST(AmsMergeTest, RejectsIncompatibleSketches) {
  AmsSketch base(5, 8, 1);
  AmsSketch wrong_seed(5, 8, 2);
  AmsSketch wrong_groups(4, 8, 1);
  EXPECT_FALSE(base.Merge(wrong_seed).ok());
  EXPECT_FALSE(base.Merge(wrong_groups).ok());
  EXPECT_FALSE(base.Merge(base).ok());
}

TEST(LearnedCountMinMergeTest, HalfTraceMergeEqualsFullTrace) {
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(20000, 800, 29, &truth);
  const std::vector<uint64_t> heavy = SelectTopKeys(truth, 20);

  auto full = LearnedCountMinSketch::Create(500, 4, heavy, 31);
  auto first = LearnedCountMinSketch::Create(500, 4, heavy, 31);
  auto second = LearnedCountMinSketch::Create(500, 4, heavy, 31);
  ASSERT_TRUE(full.ok() && first.ok() && second.ok());

  full.value().UpdateBatch(Span<const uint64_t>(trace));
  IngestHalves(trace, first.value(), second.value());
  ASSERT_TRUE(first.value().Merge(second.value()).ok());

  for (const auto& [key, count] : truth) {
    EXPECT_EQ(first.value().Estimate(key), full.value().Estimate(key));
  }
}

TEST(LearnedCountMinMergeTest, RejectsDifferentOracleSets) {
  auto a = LearnedCountMinSketch::Create(100, 2, {1, 2, 3}, 1);
  auto b = LearnedCountMinSketch::Create(100, 2, {1, 2, 4}, 1);
  auto c = LearnedCountMinSketch::Create(100, 2, {1, 2}, 1);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_FALSE(a.value().Merge(b.value()).ok());
  EXPECT_FALSE(a.value().Merge(c.value()).ok());
  EXPECT_FALSE(a.value().Merge(a.value()).ok());
}

TEST(MisraGriesMergeTest, MergedSummaryKeepsDeterministicGuarantees) {
  constexpr size_t kCapacity = 64;
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 37, &truth);

  MisraGries first(kCapacity), second(kCapacity);
  IngestHalves(trace, first, second);
  ASSERT_TRUE(first.Merge(second).ok());

  EXPECT_LE(first.size(), kCapacity);
  EXPECT_EQ(first.total_count(), trace.size());
  // Lower bound is preserved and the merged error bound is the sum of the
  // input bounds: (n1 + n2)/(capacity + 1) = total/(capacity + 1).
  const double bound =
      static_cast<double>(trace.size()) / static_cast<double>(kCapacity + 1);
  for (const auto& [key, count] : truth) {
    const uint64_t estimate = first.Estimate(key);
    EXPECT_LE(estimate, count);
    EXPECT_LE(static_cast<double>(count - estimate), bound + 1.0);
  }
}

TEST(MisraGriesMergeTest, RejectsIncompatibleSummaries) {
  MisraGries a(8), b(9);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(a).ok());
}

TEST(SpaceSavingMergeTest, MergedSummaryKeepsUpperBound) {
  constexpr size_t kCapacity = 64;
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 41, &truth);

  SpaceSaving first(kCapacity), second(kCapacity);
  IngestHalves(trace, first, second);
  ASSERT_TRUE(first.Merge(second).ok());

  EXPECT_LE(first.size(), kCapacity);
  EXPECT_EQ(first.total_count(), trace.size());
  for (const auto& [key, count] : truth) {
    EXPECT_GE(first.Estimate(key), count);
  }
}

TEST(SpaceSavingMergeTest, HeavyHittersSurviveTheMerge) {
  constexpr size_t kCapacity = 64;
  std::unordered_map<uint64_t, uint64_t> truth;
  const auto trace = MakeTrace(30000, 1000, 43, &truth);

  SpaceSaving first(kCapacity), second(kCapacity);
  IngestHalves(trace, first, second);
  ASSERT_TRUE(first.Merge(second).ok());

  // Any key whose frequency clearly dominates the merged error bound must
  // still be tracked after the merge (4n/capacity gives provable margin
  // over the combine step's worst case).
  const uint64_t threshold = 4 * trace.size() / kCapacity;
  for (const auto& [key, count] : truth) {
    if (count > threshold) {
      EXPECT_TRUE(first.IsTracked(key));
    }
  }
}

TEST(SpaceSavingMergeTest, RejectsIncompatibleSummaries) {
  SpaceSaving a(8), b(9);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(a).ok());
}

}  // namespace
}  // namespace opthash::sketch

#include "sketch/count_min_sketch.h"

#include <cmath>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/random.h"

namespace opthash::sketch {
namespace {

TEST(CountMinSketchTest, ExactWhenNoCollisions) {
  // Width much larger than the key set: estimates should be exact with high
  // probability; we verify against exact counts.
  CountMinSketch sketch(1 << 14, 4, /*seed=*/1);
  for (uint64_t key = 0; key < 10; ++key) {
    for (uint64_t rep = 0; rep <= key; ++rep) sketch.Update(key);
  }
  for (uint64_t key = 0; key < 10; ++key) {
    EXPECT_EQ(sketch.Estimate(key), key + 1);
  }
}

TEST(CountMinSketchTest, NeverUnderestimates) {
  CountMinSketch sketch(64, 3, 2);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(3);
  for (int t = 0; t < 20000; ++t) {
    const uint64_t key = rng.NextBounded(500);
    sketch.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.Estimate(key), count);
  }
}

TEST(CountMinSketchTest, ConservativeUpdateNeverUnderestimates) {
  CountMinSketch sketch(64, 3, 2, /*conservative_update=*/true);
  std::unordered_map<uint64_t, uint64_t> truth;
  Rng rng(4);
  for (int t = 0; t < 20000; ++t) {
    const uint64_t key = rng.NextBounded(500);
    sketch.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.Estimate(key), count);
  }
}

TEST(CountMinSketchTest, ConservativeUpdateDominatesStandard) {
  // Same hash seeds => conservative estimates are <= standard estimates.
  CountMinSketch standard(128, 3, 7, false);
  CountMinSketch conservative(128, 3, 7, true);
  Rng rng(5);
  std::vector<uint64_t> keys(30000);
  for (auto& key : keys) key = rng.NextBounded(2000);
  for (uint64_t key : keys) {
    standard.Update(key);
    conservative.Update(key);
  }
  for (uint64_t key = 0; key < 2000; ++key) {
    EXPECT_LE(conservative.Estimate(key), standard.Estimate(key));
  }
}

TEST(CountMinSketchTest, ErrorBoundHoldsWithHighProbability) {
  // |estimate - f| <= eps * ||f||_1 with probability >= 1 - delta, where
  // eps = e / w and delta = e^-d.
  constexpr size_t kWidth = 272;  // eps ~= 0.01
  constexpr size_t kDepth = 4;    // delta ~= 0.018
  CountMinSketch sketch(kWidth, kDepth, 11);
  Rng rng(6);
  std::unordered_map<uint64_t, uint64_t> truth;
  constexpr uint64_t kTotal = 100000;
  ZipfSampler zipf(5000, 1.1);
  for (uint64_t t = 0; t < kTotal; ++t) {
    const uint64_t key = zipf.Sample(rng);
    sketch.Update(key);
    ++truth[key];
  }
  const double bound = sketch.Epsilon() * static_cast<double>(kTotal);
  size_t violations = 0;
  for (const auto& [key, count] : truth) {
    if (static_cast<double>(sketch.Estimate(key) - count) > bound) {
      ++violations;
    }
  }
  const double violation_rate =
      static_cast<double>(violations) / static_cast<double>(truth.size());
  EXPECT_LT(violation_rate, 3.0 * sketch.Delta());
}

TEST(CountMinSketchTest, FromErrorBoundsGeometry) {
  auto result = CountMinSketch::FromErrorBounds(0.01, 0.01, 1);
  ASSERT_TRUE(result.ok());
  const CountMinSketch& sketch = result.value();
  EXPECT_GE(sketch.width(), 271u);
  EXPECT_GE(sketch.depth(), 5u);
  EXPECT_LE(sketch.Epsilon(), 0.0101);
  EXPECT_LE(sketch.Delta(), 0.0101);
}

TEST(CountMinSketchTest, FromErrorBoundsRejectsBadArgs) {
  EXPECT_FALSE(CountMinSketch::FromErrorBounds(0.0, 0.1, 1).ok());
  EXPECT_FALSE(CountMinSketch::FromErrorBounds(0.1, 1.5, 1).ok());
  EXPECT_FALSE(CountMinSketch::FromErrorBounds(-0.1, 0.5, 1).ok());
}

TEST(CountMinSketchTest, UpdateWithCount) {
  CountMinSketch sketch(1024, 2, 13);
  sketch.Update(5, 100);
  sketch.Update(5, 23);
  EXPECT_GE(sketch.Estimate(5), 123u);
  EXPECT_EQ(sketch.total_count(), 123u);
}

TEST(CountMinSketchTest, UnseenKeysUsuallySmall) {
  CountMinSketch sketch(4096, 4, 17);
  for (uint64_t key = 0; key < 100; ++key) sketch.Update(key);
  // A fresh key collides with every level only with tiny probability.
  size_t nonzero = 0;
  for (uint64_t key = 10000; key < 11000; ++key) {
    if (sketch.Estimate(key) != 0) ++nonzero;
  }
  EXPECT_LT(nonzero, 20u);
}

TEST(CountMinSketchTest, MemoryAccounting) {
  CountMinSketch sketch(100, 4, 19);
  EXPECT_EQ(sketch.TotalBuckets(), 400u);
  EXPECT_EQ(sketch.MemoryBytes(), 1600u);
}

class CmsDepthSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CmsDepthSweep, DeeperSketchesNoWorseOnAverage) {
  // For a fixed total budget, error behaviour varies with depth, but the
  // one-sided guarantee must hold at every depth.
  const size_t depth = GetParam();
  const size_t width = 512 / depth;
  CountMinSketch sketch(width, depth, 23);
  Rng rng(7);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (int t = 0; t < 30000; ++t) {
    const uint64_t key = rng.NextBounded(3000);
    sketch.Update(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch.Estimate(key), count);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, CmsDepthSweep,
                         ::testing::Values(1, 2, 4, 6, 8));

}  // namespace
}  // namespace opthash::sketch

#include "stream/features.h"

#include <gtest/gtest.h>

#include "stream/query_log.h"

namespace opthash::stream {
namespace {

TEST(TokenizeTest, SplitsOnNonAlphanumeric) {
  const auto tokens = BagOfWordsFeaturizer::Tokenize("www.google.com");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "www");
  EXPECT_EQ(tokens[1], "google");
  EXPECT_EQ(tokens[2], "com");
}

TEST(TokenizeTest, Lowercases) {
  const auto tokens = BagOfWordsFeaturizer::Tokenize("Sharon STONE");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "sharon");
  EXPECT_EQ(tokens[1], "stone");
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(BagOfWordsFeaturizer::Tokenize("").empty());
  EXPECT_TRUE(BagOfWordsFeaturizer::Tokenize("...!?").empty());
}

TEST(TokenizeTest, KeepsDigits) {
  const auto tokens = BagOfWordsFeaturizer::Tokenize("area 51");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[1], "51");
}

TEST(BagOfWordsTest, VocabularyIsTopKByWeight) {
  BagOfWordsFeaturizer featurizer(2);
  featurizer.Fit({{"google maps", 100.0},
                  {"google", 50.0},
                  {"rare words here", 1.0}});
  EXPECT_EQ(featurizer.VocabularySize(), 2u);
  // "google" (150) and "maps" (100) beat the weight-1 tokens.
  EXPECT_EQ(featurizer.FeatureName(0), "word:google");
  EXPECT_EQ(featurizer.FeatureName(1), "word:maps");
}

TEST(BagOfWordsTest, FeatureDimIsVocabPlusFour) {
  BagOfWordsFeaturizer featurizer(10);
  featurizer.Fit({{"a b c", 1.0}});
  EXPECT_EQ(featurizer.VocabularySize(), 3u);  // Fewer tokens than cap.
  EXPECT_EQ(featurizer.FeatureDim(), 7u);
}

TEST(BagOfWordsTest, CountFeaturesMatchPaperDefinition) {
  BagOfWordsFeaturizer featurizer(5);
  featurizer.Fit({{"x", 1.0}});
  const std::string text = "www.google.com? hi";
  const std::vector<double> f = featurizer.Featurize(text);
  const size_t base = featurizer.VocabularySize();
  EXPECT_DOUBLE_EQ(f[base + 0], 18.0);  // ASCII chars (all of them).
  EXPECT_DOUBLE_EQ(f[base + 1], 3.0);   // Punctuation: two dots + '?'.
  EXPECT_DOUBLE_EQ(f[base + 2], 2.0);   // Dots.
  EXPECT_DOUBLE_EQ(f[base + 3], 1.0);   // Whitespaces.
}

TEST(BagOfWordsTest, WordCountsInFeatures) {
  BagOfWordsFeaturizer featurizer(5);
  featurizer.Fit({{"dog cat", 1.0}});
  const std::vector<double> f = featurizer.Featurize("dog dog bird");
  // "dog" appears twice; "cat" zero times; "bird" is out of vocabulary.
  double dog = -1.0;
  double cat = -1.0;
  for (size_t i = 0; i < featurizer.VocabularySize(); ++i) {
    if (featurizer.FeatureName(i) == "word:dog") dog = f[i];
    if (featurizer.FeatureName(i) == "word:cat") cat = f[i];
  }
  EXPECT_DOUBLE_EQ(dog, 2.0);
  EXPECT_DOUBLE_EQ(cat, 0.0);
}

TEST(BagOfWordsTest, DeterministicVocabularyOnTies) {
  BagOfWordsFeaturizer a(2);
  BagOfWordsFeaturizer b(2);
  const std::vector<std::pair<std::string, double>> corpus = {
      {"zebra apple mango", 1.0}};
  a.Fit(corpus);
  b.Fit(corpus);
  EXPECT_EQ(a.FeatureName(0), b.FeatureName(0));
  EXPECT_EQ(a.FeatureName(1), b.FeatureName(1));
  // Alphabetical tie-break.
  EXPECT_EQ(a.FeatureName(0), "word:apple");
  EXPECT_EQ(a.FeatureName(1), "word:mango");
}

TEST(BagOfWordsTest, CountFeatureNames) {
  BagOfWordsFeaturizer featurizer(1);
  featurizer.Fit({{"x", 1.0}});
  EXPECT_EQ(featurizer.FeatureName(1), "num_ascii_chars");
  EXPECT_EQ(featurizer.FeatureName(2), "num_punctuation");
  EXPECT_EQ(featurizer.FeatureName(3), "num_dots");
  EXPECT_EQ(featurizer.FeatureName(4), "num_whitespaces");
}

TEST(BagOfWordsTest, SerializationRoundTrip) {
  BagOfWordsFeaturizer featurizer(10);
  featurizer.Fit({{"google maps free music", 10.0}, {"news weather", 3.0}});
  auto restored = BagOfWordsFeaturizer::Deserialize(featurizer.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().VocabularySize(), featurizer.VocabularySize());
  EXPECT_EQ(restored.value().FeatureDim(), featurizer.FeatureDim());
  for (const std::string text :
       {"google news", "maps.google.com?", "unknown words here"}) {
    EXPECT_EQ(restored.value().Featurize(text), featurizer.Featurize(text));
  }
}

TEST(BagOfWordsTest, DeserializeRejectsCorruptBlobs) {
  EXPECT_FALSE(BagOfWordsFeaturizer::Deserialize("").ok());
  EXPECT_FALSE(BagOfWordsFeaturizer::Deserialize("wrong.magic 5 2 a b").ok());
  // Count exceeding the cap.
  EXPECT_FALSE(BagOfWordsFeaturizer::Deserialize("opthash.bow.v1 2 5 a").ok());
  // Truncated vocabulary.
  EXPECT_FALSE(
      BagOfWordsFeaturizer::Deserialize("opthash.bow.v1 5 3 a b").ok());
}

TEST(BagOfWordsTest, QueryLogIntegrationVocabularyContainsDomainTokens) {
  // Fit on a day of generated queries weighted by occurrences — the §7.3
  // pipeline. The navigational tokens must make the vocabulary.
  QueryLogConfig config;
  config.num_queries = 5000;
  config.arrivals_per_day = 5000;
  config.num_days = 2;
  QueryLog log(config);
  std::unordered_map<size_t, double> day_counts;
  for (size_t rank : log.GenerateDay(0)) day_counts[rank] += 1.0;
  std::vector<std::pair<std::string, double>> corpus;
  corpus.reserve(day_counts.size());
  for (const auto& [rank, weight] : day_counts) {
    corpus.push_back({log.QueryText(rank), weight});
  }
  BagOfWordsFeaturizer featurizer(500);
  featurizer.Fit(corpus);
  bool has_google = false;
  bool has_www = false;
  bool has_com = false;
  for (size_t i = 0; i < featurizer.VocabularySize(); ++i) {
    const std::string name = featurizer.FeatureName(i);
    has_google |= name == "word:google";
    has_www |= name == "word:www";
    has_com |= name == "word:com";
  }
  EXPECT_TRUE(has_google);
  EXPECT_TRUE(has_www);
  EXPECT_TRUE(has_com);
}

}  // namespace
}  // namespace opthash::stream

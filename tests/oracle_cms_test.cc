#include "core/oracle_cms.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/baseline_estimators.h"
#include "core/evaluation.h"
#include "sketch/learned_count_min.h"

namespace opthash::core {
namespace {

TEST(OracleLearnedCmsTest, CreateValidation) {
  auto always_false = [](const stream::StreamItem&) { return false; };
  EXPECT_FALSE(OracleLearnedCms::Create(100, 0, 10, always_false, 1).ok());
  EXPECT_FALSE(OracleLearnedCms::Create(100, 2, 50, always_false, 1).ok());
  EXPECT_FALSE(OracleLearnedCms::Create(100, 2, 10, nullptr, 1).ok());
  EXPECT_TRUE(OracleLearnedCms::Create(100, 2, 10, always_false, 1).ok());
}

TEST(OracleLearnedCmsTest, FlaggedElementsCountedExactly) {
  auto flag_low_ids = [](const stream::StreamItem& item) {
    return item.id < 5;
  };
  auto created = OracleLearnedCms::Create(200, 2, 10, flag_low_ids, 2);
  ASSERT_TRUE(created.ok());
  OracleLearnedCms& estimator = created.value();
  for (int rep = 0; rep < 17; ++rep) estimator.Update({3, nullptr});
  EXPECT_DOUBLE_EQ(estimator.Estimate({3, nullptr}), 17.0);
  EXPECT_EQ(estimator.heavy_in_use(), 1u);
}

TEST(OracleLearnedCmsTest, CapacityBoundsUniqueBuckets) {
  auto flag_all = [](const stream::StreamItem&) { return true; };
  auto created = OracleLearnedCms::Create(100, 2, 5, flag_all, 3);
  ASSERT_TRUE(created.ok());
  OracleLearnedCms& estimator = created.value();
  for (uint64_t id = 0; id < 50; ++id) estimator.Update({id, nullptr});
  EXPECT_EQ(estimator.heavy_in_use(), 5u);
  // The first five claimed unique buckets; later ones flowed to the CMS and
  // retain the one-sided CMS property.
  for (uint64_t id = 5; id < 50; ++id) {
    EXPECT_GE(estimator.Estimate({id, nullptr}), 1.0);
  }
}

TEST(OracleLearnedCmsTest, UnflaggedGoThroughCms) {
  auto flag_none = [](const stream::StreamItem&) { return false; };
  auto created = OracleLearnedCms::Create(130, 2, 5, flag_none, 4);
  ASSERT_TRUE(created.ok());
  OracleLearnedCms& estimator = created.value();
  Rng rng(5);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (int t = 0; t < 5000; ++t) {
    const uint64_t id = rng.NextBounded(200);
    estimator.Update({id, nullptr});
    ++truth[id];
  }
  EXPECT_EQ(estimator.heavy_in_use(), 0u);
  for (const auto& [id, count] : truth) {
    EXPECT_GE(estimator.Estimate({id, nullptr}), static_cast<double>(count));
  }
}

TEST(TrainHeavyHitterOracleTest, Validation) {
  EXPECT_FALSE(TrainHeavyHitterOracle({}, 0.1, 1).ok());
  std::vector<PrefixElement> featureless = {{1, 5.0, {}}};
  EXPECT_FALSE(TrainHeavyHitterOracle(featureless, 0.1, 1).ok());
  std::vector<PrefixElement> ok = {{1, 5.0, {1.0}}, {2, 1.0, {0.0}}};
  EXPECT_FALSE(TrainHeavyHitterOracle(ok, 0.0, 1).ok());
  EXPECT_FALSE(TrainHeavyHitterOracle(ok, 1.0, 1).ok());
  EXPECT_TRUE(TrainHeavyHitterOracle(ok, 0.5, 1).ok());
}

TEST(TrainHeavyHitterOracleTest, LearnsSeparableHeaviness) {
  // Heavy elements live at feature +3, light at -3: the oracle must learn
  // the boundary.
  Rng rng(6);
  std::vector<PrefixElement> prefix;
  for (uint64_t i = 0; i < 40; ++i) {
    prefix.push_back({.id = i,
                      .frequency = 100.0,
                      .features = {3.0 + 0.3 * rng.NextGaussian()}});
  }
  for (uint64_t i = 40; i < 400; ++i) {
    prefix.push_back({.id = i,
                      .frequency = 2.0,
                      .features = {-3.0 + 0.3 * rng.NextGaussian()}});
  }
  auto oracle = TrainHeavyHitterOracle(prefix, 0.1, 7);
  ASSERT_TRUE(oracle.ok());
  EXPECT_GE(oracle.value().train_accuracy, 0.99);
  EXPECT_DOUBLE_EQ(oracle.value().frequency_cutoff, 100.0);

  const auto predicate = oracle.value().AsPredicate();
  const std::vector<double> heavy_features = {3.0};
  const std::vector<double> light_features = {-3.0};
  EXPECT_TRUE(predicate({999, &heavy_features}));
  EXPECT_FALSE(predicate({999, &light_features}));
  EXPECT_FALSE(predicate({999, nullptr}));  // No features -> non-heavy.
}

TEST(OracleLearnedCmsTest, RealizableOracleBetweenIdealAndPlainCms) {
  // The §2.2 hierarchy on a skewed stream with learnable heaviness:
  //   ideal heavy-hitter <= learned-oracle heavy-hitter <= plain count-min
  // in average absolute error at equal memory.
  Rng rng(8);
  std::vector<PrefixElement> prefix;
  std::unordered_map<uint64_t, std::vector<double>> features;
  for (uint64_t i = 0; i < 30; ++i) {
    features[i] = {4.0 + 0.3 * rng.NextGaussian()};
    prefix.push_back({.id = i, .frequency = 80.0, .features = features[i]});
  }
  for (uint64_t i = 30; i < 600; ++i) {
    features[i] = {-4.0 + 0.3 * rng.NextGaussian()};
    prefix.push_back({.id = i, .frequency = 2.0, .features = features[i]});
  }
  auto oracle = TrainHeavyHitterOracle(prefix, 0.05, 9);
  ASSERT_TRUE(oracle.ok());

  constexpr size_t kBudget = 220;
  auto learned = OracleLearnedCms::Create(kBudget, 2, 30,
                                          oracle.value().AsPredicate(), 10);
  ASSERT_TRUE(learned.ok());
  CountMinEstimator plain(kBudget, 2, 10);

  // Stream: heavy ids ~50 arrivals each, light ids ~2 each.
  stream::ExactCounter truth;
  std::vector<uint64_t> stream_arrivals;
  for (uint64_t i = 0; i < 30; ++i) {
    for (int rep = 0; rep < 50; ++rep) stream_arrivals.push_back(i);
  }
  for (uint64_t i = 30; i < 600; ++i) {
    for (int rep = 0; rep < 2; ++rep) stream_arrivals.push_back(i);
  }
  rng.Shuffle(stream_arrivals);
  const std::vector<uint64_t> heavy_keys =
      [&] {
        std::unordered_map<uint64_t, uint64_t> totals;
        for (uint64_t id : stream_arrivals) ++totals[id];
        return sketch::SelectTopKeys(totals, 30);
      }();
  auto ideal = LearnedCmsEstimator::Create(kBudget, 2, heavy_keys, 10);
  ASSERT_TRUE(ideal.ok());

  for (uint64_t id : stream_arrivals) {
    const stream::StreamItem item{id, &features[id]};
    learned.value().Update(item);
    plain.Update(item);
    ideal.value().Update(item);
    truth.Add(id);
  }

  std::vector<EvalQuery> queries;
  for (const auto& [id, count] : truth.counts()) {
    queries.push_back({{id, &features[id]}, static_cast<double>(count)});
  }
  const double learned_error =
      EvaluateEstimator(learned.value(), queries).average_absolute_error;
  const double plain_error =
      EvaluateEstimator(plain, queries).average_absolute_error;
  const double ideal_error =
      EvaluateEstimator(ideal.value(), queries).average_absolute_error;
  EXPECT_LE(ideal_error, learned_error + 1e-9);
  EXPECT_LT(learned_error, plain_error);
}

}  // namespace
}  // namespace opthash::core

#include "common/status.h"

#include <gtest/gtest.h>

namespace opthash {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status status = Status::InvalidArgument("bad lambda");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad lambda");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad lambda");
}

TEST(StatusTest, AllErrorFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ToStringNamesEveryCode) {
  EXPECT_NE(Status::OutOfRange("m").ToString().find("OutOfRange"),
            std::string::npos);
  EXPECT_NE(Status::NotFound("m").ToString().find("NotFound"),
            std::string::npos);
  EXPECT_NE(Status::Internal("m").ToString().find("Internal"),
            std::string::npos);
  EXPECT_NE(
      Status::FailedPrecondition("m").ToString().find("FailedPrecondition"),
      std::string::npos);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "missing");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  ASSERT_TRUE(result.ok());
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> result(std::vector<int>{1, 2});
  result.value().push_back(3);
  EXPECT_EQ(result.value().size(), 3u);
}

}  // namespace
}  // namespace opthash

#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace opthash {
namespace {

TEST(TablePrinterTest, RendersHeadersAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAlign) {
  TablePrinter table({"a", "b"});
  table.AddRow({"longvalue", "x"});
  const std::string out = table.ToString();
  // Each line has the same length (fixed-width columns).
  size_t first_len = out.find('\n');
  size_t pos = first_len + 1;
  while (pos < out.size()) {
    const size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Num(-0.5, 1), "-0.5");
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter table({"only"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

}  // namespace
}  // namespace opthash

// Batch == scalar equivalence for the whole read side (PR 4): for every
// FrequencyEstimator, every point-query sketch, and both zero-copy mapped
// views, EstimateBatch over a randomized query set must be element-wise
// identical to a loop of Estimate — including the empty-batch and
// single-item edges. Also covers the base-class default loop (external
// implementations that never override EstimateBatch) and the
// BundleQueryEngine block pipeline.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/span.h"
#include "core/adaptive_estimator.h"
#include "core/baseline_estimators.h"
#include "core/opt_hash_estimator.h"
#include "io/model_io.h"
#include "io/sketch_snapshot.h"
#include "sketch/count_min_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/learned_count_min.h"
#include "sketch/misra_gries.h"
#include "sketch/space_saving.h"
#include "stream/features.h"

namespace opthash {
namespace {

using core::AdaptiveConfig;
using core::AdaptiveOptHashEstimator;
using core::ClassifierKind;
using core::CountMinEstimator;
using core::CountSketchEstimator;
using core::FrequencyEstimator;
using core::LearnedCmsEstimator;
using core::OptHashConfig;
using core::OptHashEstimator;
using core::OptHashQueryWorkspace;
using core::PrefixElement;
using core::SolverKind;
using stream::StreamItem;

// Key universes: stream keys overlap the query keys only partially, so
// batches mix hot, cold and never-seen ids.
std::vector<uint64_t> MakeKeys(size_t count, uint64_t seed, uint64_t range) {
  Rng rng(seed);
  std::vector<uint64_t> keys(count);
  for (auto& key : keys) key = rng.NextBounded(range);
  return keys;
}

// Asserts batch == scalar for one estimator over `items`, including the
// empty and single-item edges.
void ExpectBatchMatchesScalar(const FrequencyEstimator& estimator,
                              const std::vector<StreamItem>& items) {
  std::vector<double> batch(items.size(), -1.0);
  estimator.EstimateBatch(
      Span<const StreamItem>(items.data(), items.size()),
      Span<double>(batch.data(), batch.size()));
  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_EQ(batch[i], estimator.Estimate(items[i])) << "index " << i;
  }
  // Empty batch: a no-op that must not touch anything.
  estimator.EstimateBatch(Span<const StreamItem>(),
                          Span<double>());
  // Single-item batches across the set.
  for (size_t i = 0; i < items.size(); i += 37) {
    double one = -1.0;
    estimator.EstimateBatch(Span<const StreamItem>(&items[i], 1),
                            Span<double>(&one, 1));
    EXPECT_EQ(one, estimator.Estimate(items[i]));
  }
}

std::vector<StreamItem> ItemsOf(const std::vector<uint64_t>& keys) {
  std::vector<StreamItem> items;
  items.reserve(keys.size());
  for (uint64_t key : keys) items.push_back({key, nullptr});
  return items;
}

TEST(EstimateBatchTest, CountMinEstimatorMatchesScalar) {
  CountMinEstimator estimator(1024, 4, 7);
  for (uint64_t key : MakeKeys(5000, 1, 600)) estimator.Update({key, nullptr});
  ExpectBatchMatchesScalar(estimator, ItemsOf(MakeKeys(997, 2, 900)));
}

TEST(EstimateBatchTest, ConservativeCountMinEstimatorMatchesScalar) {
  CountMinEstimator estimator(1024, 4, 7, /*conservative_update=*/true);
  for (uint64_t key : MakeKeys(5000, 3, 600)) estimator.Update({key, nullptr});
  ExpectBatchMatchesScalar(estimator, ItemsOf(MakeKeys(997, 4, 900)));
}

TEST(EstimateBatchTest, CountSketchEstimatorMatchesScalar) {
  CountSketchEstimator estimator(1024, 5, 11);
  for (uint64_t key : MakeKeys(5000, 5, 600)) estimator.Update({key, nullptr});
  ExpectBatchMatchesScalar(estimator, ItemsOf(MakeKeys(997, 6, 900)));
}

TEST(EstimateBatchTest, LearnedCmsEstimatorMatchesScalar) {
  auto estimator =
      LearnedCmsEstimator::Create(1024, 4, {1, 2, 3, 50, 51, 52}, 13);
  ASSERT_TRUE(estimator.ok());
  for (uint64_t key : MakeKeys(5000, 7, 600)) {
    estimator.value().Update({key, nullptr});
  }
  ExpectBatchMatchesScalar(estimator.value(), ItemsOf(MakeKeys(997, 8, 900)));
}

// Trained opt-hash estimator with two separable frequency tiers.
OptHashEstimator TrainedEstimator(ClassifierKind classifier) {
  Rng rng(17);
  std::vector<PrefixElement> prefix;
  for (size_t i = 0; i < 12; ++i) {
    prefix.push_back({.id = 1000 + i,
                      .frequency = 100.0 + static_cast<double>(i % 3),
                      .features = {5.0 + rng.NextGaussian() * 0.2,
                                   rng.NextGaussian()}});
  }
  for (size_t i = 0; i < 18; ++i) {
    prefix.push_back({.id = 2000 + i,
                      .frequency = 2.0 + static_cast<double>(i % 2),
                      .features = {-5.0 + rng.NextGaussian() * 0.2,
                                   rng.NextGaussian()}});
  }
  OptHashConfig config;
  config.total_buckets = 40;
  config.id_ratio = 0.3;
  config.solver = SolverKind::kDp;
  config.classifier = classifier;
  config.rf.num_trees = 5;
  auto trained = OptHashEstimator::Train(config, prefix);
  OPTHASH_CHECK(trained.ok());
  return std::move(trained).value();
}

// Query mix: stored ids without features, stored ids with features,
// unseen ids with features (classifier route), unseen without features.
std::vector<StreamItem> MixedQueries(
    std::vector<std::vector<double>>& feature_store) {
  Rng rng(23);
  feature_store.clear();
  feature_store.reserve(400);
  std::vector<StreamItem> items;
  for (size_t i = 0; i < 400; ++i) {
    const uint64_t id = 900 + rng.NextBounded(1400);
    if (i % 3 == 0) {
      items.push_back({id, nullptr});
      continue;
    }
    feature_store.push_back(
        {rng.NextDouble(-6.0, 6.0), rng.NextGaussian()});
    items.push_back({id, &feature_store.back()});
  }
  return items;
}

TEST(EstimateBatchTest, OptHashMatchesScalarAcrossClassifiers) {
  for (const ClassifierKind kind :
       {ClassifierKind::kNone, ClassifierKind::kLogisticRegression,
        ClassifierKind::kCart, ClassifierKind::kRandomForest}) {
    const OptHashEstimator estimator = TrainedEstimator(kind);
    std::vector<std::vector<double>> feature_store;
    const std::vector<StreamItem> items = MixedQueries(feature_store);
    ExpectBatchMatchesScalar(estimator, items);
    // The caller-provided-workspace overload answers identically too.
    OptHashQueryWorkspace workspace;
    std::vector<double> batch(items.size());
    estimator.EstimateBatch(Span<const StreamItem>(items.data(), items.size()),
                            Span<double>(batch.data(), batch.size()),
                            workspace);
    for (size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(batch[i], estimator.Estimate(items[i]));
    }
  }
}

TEST(EstimateBatchTest, AdaptiveOptHashMatchesScalar) {
  AdaptiveConfig config;
  config.expected_distinct = 4000;
  std::vector<uint64_t> prefix_ids;
  for (uint64_t id = 1000; id < 1012; ++id) prefix_ids.push_back(id);
  for (uint64_t id = 2000; id < 2018; ++id) prefix_ids.push_back(id);
  AdaptiveOptHashEstimator estimator(
      TrainedEstimator(ClassifierKind::kCart), config, prefix_ids);
  std::vector<std::vector<double>> stream_store;
  for (const StreamItem& item : MixedQueries(stream_store)) {
    estimator.Update(item);
  }
  std::vector<std::vector<double>> feature_store;
  ExpectBatchMatchesScalar(estimator, MixedQueries(feature_store));
}

// External implementations that never override EstimateBatch get the
// base-class loop.
class MinimalEstimator : public FrequencyEstimator {
 public:
  void Update(const StreamItem& item) override { count_ += item.id; }
  double Estimate(const StreamItem& item) const override {
    return static_cast<double>(item.id % 7);
  }
  size_t MemoryBuckets() const override { return 1; }
  const char* Name() const override { return "minimal"; }

 private:
  uint64_t count_ = 0;
};

TEST(EstimateBatchTest, DefaultLoopFallbackMatchesScalar) {
  MinimalEstimator estimator;
  ExpectBatchMatchesScalar(estimator, ItemsOf(MakeKeys(97, 31, 1000)));
}

// ---- Sketch-level batch queries. ----------------------------------------

template <typename Sketch, typename Out>
void ExpectSketchBatchMatchesScalar(const Sketch& sketch,
                                    const std::vector<uint64_t>& keys) {
  std::vector<Out> batch(keys.size());
  sketch.EstimateBatch(Span<const uint64_t>(keys.data(), keys.size()),
                       Span<Out>(batch.data(), batch.size()));
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(batch[i], sketch.Estimate(keys[i])) << "index " << i;
  }
  sketch.EstimateBatch(Span<const uint64_t>(), Span<Out>());
  Out one{};
  sketch.EstimateBatch(Span<const uint64_t>(keys.data(), 1),
                       Span<Out>(&one, 1));
  EXPECT_EQ(one, sketch.Estimate(keys.front()));
}

TEST(EstimateBatchTest, SketchBatchesMatchScalar) {
  const std::vector<uint64_t> stream = MakeKeys(6000, 41, 700);
  const std::vector<uint64_t> queries = MakeKeys(997, 42, 1000);

  sketch::CountMinSketch cms(512, 4, 3);
  cms.UpdateBatch(stream);
  ExpectSketchBatchMatchesScalar<sketch::CountMinSketch, uint64_t>(cms,
                                                                   queries);

  sketch::CountMinSketch conservative(512, 4, 3, /*conservative_update=*/true);
  conservative.UpdateBatch(stream);
  ExpectSketchBatchMatchesScalar<sketch::CountMinSketch, uint64_t>(
      conservative, queries);

  sketch::CountSketch countsketch(512, 5, 3);
  countsketch.UpdateBatch(stream);
  ExpectSketchBatchMatchesScalar<sketch::CountSketch, int64_t>(countsketch,
                                                               queries);
  {
    std::vector<uint64_t> clamped(queries.size());
    countsketch.EstimateNonNegativeBatch(
        Span<const uint64_t>(queries.data(), queries.size()),
        Span<uint64_t>(clamped.data(), clamped.size()));
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(clamped[i], countsketch.EstimateNonNegative(queries[i]));
    }
  }

  auto lcms =
      sketch::LearnedCountMinSketch::Create(1024, 4, {5, 6, 7, 100}, 9);
  ASSERT_TRUE(lcms.ok());
  lcms.value().UpdateBatch(stream);
  ExpectSketchBatchMatchesScalar<sketch::LearnedCountMinSketch, uint64_t>(
      lcms.value(), queries);

  sketch::MisraGries mg(64);
  mg.UpdateBatch(stream);
  ExpectSketchBatchMatchesScalar<sketch::MisraGries, uint64_t>(mg, queries);

  sketch::SpaceSaving ss(64);
  ss.UpdateBatch(stream);
  ExpectSketchBatchMatchesScalar<sketch::SpaceSaving, uint64_t>(ss, queries);
}

// ---- Mapped views. -------------------------------------------------------

TEST(EstimateBatchTest, MappedCountMinViewMatchesScalarAndOwned) {
  sketch::CountMinSketch cms(512, 4, 3);
  cms.UpdateBatch(MakeKeys(6000, 43, 700));
  const std::string path =
      ::testing::TempDir() + "/estimate_batch_cms.bin";
  ASSERT_TRUE(io::SaveSketchSnapshot(path, cms).ok());
  auto view = io::MappedCountMinView::Open(path);
  ASSERT_TRUE(view.ok());

  const std::vector<uint64_t> queries = MakeKeys(997, 44, 1000);
  std::vector<uint64_t> batch(queries.size());
  view.value().EstimateBatch(
      Span<const uint64_t>(queries.data(), queries.size()),
      Span<uint64_t>(batch.data(), batch.size()));
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batch[i], view.value().Estimate(queries[i]));
    ASSERT_EQ(batch[i], cms.Estimate(queries[i]));
  }
  view.value().EstimateBatch(Span<const uint64_t>(), Span<uint64_t>());
  uint64_t one = 0;
  view.value().EstimateBatch(Span<const uint64_t>(queries.data(), 1),
                             Span<uint64_t>(&one, 1));
  EXPECT_EQ(one, view.value().Estimate(queries.front()));
}

TEST(EstimateBatchTest, MappedEstimatorViewMatchesScalarAndOwned) {
  io::ModelBundle bundle;
  bundle.featurizer = stream::BagOfWordsFeaturizer(16);
  bundle.featurizer.Fit({{"alpha beta", 3.0}, {"gamma", 1.0}});
  bundle.estimator = TrainedEstimator(ClassifierKind::kCart);
  const std::string path =
      ::testing::TempDir() + "/estimate_batch_bundle.bin";
  ASSERT_TRUE(
      io::SaveModelBundle(path, bundle, io::SnapshotFormat::kBinary).ok());
  auto view = io::MappedEstimatorView::Open(path);
  ASSERT_TRUE(view.ok());

  const std::vector<uint64_t> queries = MakeKeys(997, 45, 2500);
  std::vector<double> batch(queries.size());
  view.value().EstimateBatch(
      Span<const uint64_t>(queries.data(), queries.size()),
      Span<double>(batch.data(), batch.size()));
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batch[i], view.value().Estimate(queries[i]));
    // Stored-id semantics match the owned estimator queried featureless.
    ASSERT_EQ(batch[i],
              bundle.estimator->Estimate({queries[i], nullptr}));
  }
  view.value().EstimateBatch(Span<const uint64_t>(), Span<double>());
  double one = -1.0;
  view.value().EstimateBatch(Span<const uint64_t>(queries.data(), 1),
                             Span<double>(&one, 1));
  EXPECT_EQ(one, view.value().Estimate(queries.front()));
}

// ---- BundleQueryEngine: the CLI/serving block pipeline. ------------------

TEST(EstimateBatchTest, BundleQueryEngineMatchesScalarFeaturizePath) {
  io::ModelBundle bundle;
  bundle.featurizer = stream::BagOfWordsFeaturizer(8);
  bundle.featurizer.Fit({{"heavy heavy words", 10.0}, {"tail words", 1.0}});
  // Estimator whose feature space matches the featurizer's dimension.
  Rng rng(29);
  std::vector<PrefixElement> prefix;
  for (size_t i = 0; i < 30; ++i) {
    const bool heavy = i < 10;
    prefix.push_back(
        {.id = 100 + i,
         .frequency = heavy ? 50.0 : 2.0,
         .features = bundle.featurizer.Featurize(
             heavy ? "heavy heavy words" : "tail words run long")});
  }
  OptHashConfig config;
  config.total_buckets = 30;
  config.id_ratio = 0.5;
  config.solver = SolverKind::kDp;
  config.classifier = ClassifierKind::kCart;
  auto trained = OptHashEstimator::Train(config, prefix);
  ASSERT_TRUE(trained.ok());
  bundle.estimator = std::move(trained).value();

  std::vector<stream::TraceRecord> queries;
  for (size_t i = 0; i < 333; ++i) {
    queries.push_back({90 + rng.NextBounded(60),
                       i % 2 == 0 ? "heavy heavy words" : "tail words"});
  }
  std::vector<double> block_answers(queries.size());
  io::BundleQueryEngine engine(bundle);
  // Uneven blocks exercise the reuse across differing block sizes.
  for (const size_t block : {7u, 64u, 333u}) {
    for (size_t base = 0; base < queries.size(); base += block) {
      const size_t n = std::min(block, queries.size() - base);
      engine.EstimateBlock(
          Span<const stream::TraceRecord>(queries.data() + base, n),
          Span<double>(block_answers.data() + base, n));
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      const std::vector<double> features =
          bundle.featurizer.Featurize(queries[i].text);
      ASSERT_EQ(block_answers[i],
                bundle.estimator->Estimate({queries[i].id, &features}))
          << "block " << block << " index " << i;
    }
  }
  // Empty block edge.
  engine.EstimateBlock(Span<const stream::TraceRecord>(), Span<double>());
}

}  // namespace
}  // namespace opthash
